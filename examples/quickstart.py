#!/usr/bin/env python
"""Quickstart: put FLoc on a flooded link and watch it protect legit flows.

Builds the paper's Section VI tree topology (scaled down: 27 domains, a
few TCP sources per domain, CBR bots on 6 domains flooding a target link
at ~1.4x capacity), attaches the FLoc router policy to the target link,
runs for a few simulated seconds, and prints who got the bandwidth.

Run:  python examples/quickstart.py
"""

from repro import FLocConfig, FLocPolicy, build_tree_scenario
from repro.analysis.accounting import breakdown
from repro.analysis.report import format_table


def main() -> None:
    scenario = build_tree_scenario(
        scale_factor=0.1,  # 10% of the paper's flow counts and capacity
        attack_kind="cbr",
        attack_rate_mbps=2.0,  # per bot; 36 bots -> ~72 Mbps vs 50 Mbps link
        seed=7,
    )
    print(
        f"topology: {len(scenario.path_ids)} domains "
        f"({len(scenario.attack_path_ids)} contaminated), "
        f"{len(scenario.legit_flows)} legit + "
        f"{len(scenario.attack_flows)} attack flows, "
        f"target link {scenario.units.pkts_per_tick_to_mbps(scenario.capacity):.0f} Mbps"
    )

    scenario.attach_policy(FLocPolicy(FLocConfig(s_max=25)))
    monitor = scenario.add_target_monitor(start_seconds=5.0)
    scenario.run_seconds(15.0)

    window = scenario.units.seconds_to_ticks(10.0)
    result = breakdown(
        monitor,
        list(scenario.legit_flows) + list(scenario.attack_flows),
        scenario.attack_path_ids,
        scenario.capacity,
        window,
    )
    print()
    print(
        format_table(
            ["traffic category", "share of link"],
            [
                ["legit flows, uncontaminated domains", result.legit_in_legit],
                ["legit flows, contaminated domains", result.legit_in_attack],
                ["attack flows", result.attack],
                ["(link utilization)", result.utilization],
            ],
            title="bandwidth at the flooded link (measured 5s-15s)",
        )
    )

    policy = scenario.topology.link(*scenario.target).policy
    print()
    print(f"attack accounting units identified: {len(policy.identified_attack_units())}")
    print(f"path identifiers after aggregation: {policy.plan.n_groups} (|S|max=25)")
    print(f"drop causes: {policy.drop_stats}")


if __name__ == "__main__":
    main()
