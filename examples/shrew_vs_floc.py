#!/usr/bin/env python
"""Shrew (pulsing) attack demo: low average rate, synchronized bursts.

The Shrew attack sends short coordinated bursts timed at RTT scale so its
*average* rate evades rate-based detection while TCP flows keep getting
knocked into backoff.  FLoc identifies the attackers anyway, because MTD
is measured over enough token periods to integrate the bursts
(Eq. IV.4) — drops are proportional to send rate whatever its shape.

The demo shows per-path bandwidth time series under FLoc and the same
attack under plain drop-tail, for contrast.

Run:  python examples/shrew_vs_floc.py
"""

from repro import FLocConfig, FLocPolicy, build_tree_scenario
from repro.analysis.report import format_table
from repro.analysis.timeseries import CategorySeriesMonitor


def run(policy_name: str):
    scenario = build_tree_scenario(
        scale_factor=0.1,
        attack_kind="shrew",
        attack_rate_mbps=2.0,  # burst rate; duty cycle 0.25 of one RTT
        seed=5,
    )
    if policy_name == "floc":
        scenario.attach_policy(FLocPolicy(FLocConfig()))
    units = scenario.units
    start = units.seconds_to_ticks(4.0)
    monitor = CategorySeriesMonitor(
        key_fn=lambda pkt: pkt.path_id,
        bin_ticks=units.seconds_to_ticks(1.0),
        start_tick=start,
    )
    scenario.engine.add_monitor(*scenario.target, monitor)
    scenario.run_seconds(14.0)
    n_bins = 10
    attack = set(scenario.attack_path_ids)
    legit_means = [
        units.pkts_per_tick_to_mbps(monitor.mean_rate(pid, n_bins))
        for pid in scenario.path_ids
        if pid not in attack
    ]
    attack_means = [
        units.pkts_per_tick_to_mbps(monitor.mean_rate(pid, n_bins))
        for pid in attack
    ]
    fair = units.pkts_per_tick_to_mbps(
        scenario.capacity / len(scenario.path_ids)
    )
    return legit_means, attack_means, fair


def main() -> None:
    rows = []
    for name in ("droptail", "floc"):
        legit, attack, fair = run(name)
        rows.append(
            [
                name,
                min(legit),
                sum(legit) / len(legit),
                sum(attack) / len(attack),
                fair,
            ]
        )
        print(f"  ran {name}")
    print()
    print(
        format_table(
            ["policy", "worst legit path", "mean legit path",
             "mean attack path", "fair/path"],
            rows,
            title="Shrew attack: per-path bandwidth (Mbps)",
        )
    )
    print()
    print("expected shape: under drop-tail the synchronized bursts crush")
    print("legitimate paths; under FLoc every legitimate domain keeps a")
    print("bandwidth close to its fair per-path allocation.")


if __name__ == "__main__":
    main()
