#!/usr/bin/env python
"""Crash-safe runs: checkpoint a figure job, kill it, resume bit-identically.

Walks the whole supervised-runner lifecycle in-process (no real signals
needed):

1. run the FIG-13 strategy sweep decomposed into per-(variant, strategy)
   units, with strict invariant checking and a checkpoint directory;
2. interrupt it partway through (simulating SIGTERM mid-job);
3. resume from the checkpoints — completed units load from disk, the
   rest run fresh — and verify the final table equals an uninterrupted
   reference run, row for row;
4. corrupt a counter mid-run and watch the sanitizer catch it within a
   tick.

Run:  python examples/resume_demo.py
"""

import tempfile

from repro import (
    CheckpointStore,
    CounterCorruption,
    FaultSchedule,
    FLocConfig,
    FLocPolicy,
    InvariantViolation,
    SupervisedRunner,
    build_figure_job,
    build_tree_scenario,
    install_sanitizer,
)
from repro.analysis.report import format_table
from repro.errors import Interrupted
from repro.experiments.common import FunctionalSettings


def interrupted_then_resumed(settings: FunctionalSettings) -> None:
    job = build_figure_job("fig13", settings, variants=("f-root",))
    print(f"fig13 decomposes into {len(job.units)} units:")
    for name, _ in job.units:
        print(f"  {name}")

    reference = SupervisedRunner(sanitize=settings.sanitize).run_units(
        job.units, job.fingerprint
    )

    ckpt_dir = tempfile.mkdtemp(prefix="floc-ckpt-")
    print(f"\ncheckpointing to {ckpt_dir}; interrupting after 2 units...")

    class TripAfter:
        # drop-in for the unit function: raises the same Interrupted the
        # SIGTERM handler path produces, after `n` units completed
        def __init__(self, n):
            self.left = n

    trip = TripAfter(2)
    units = []
    for name, fn in job.units:
        def wrapped(ctx, fn=fn):
            if trip.left == 0:
                raise Interrupted("simulated SIGTERM")
            trip.left -= 1
            return fn(ctx)

        units.append((name, wrapped))

    store = CheckpointStore(ckpt_dir)
    partial = SupervisedRunner(
        store=store, sanitize=settings.sanitize
    ).run_units(units, job.fingerprint)
    print(f"first run: status={partial.status}, "
          f"completed={partial.completed()}")

    resumed = SupervisedRunner(
        store=CheckpointStore(ckpt_dir), sanitize=settings.sanitize
    ).run_units(job.units, job.fingerprint)
    print(f"resume:    status={resumed.status}, "
          f"resumed={[o.name for o in resumed.outcomes if o.status == 'resumed']}")

    ref_rows = job.finalize(reference.results).rows
    res_rows = job.finalize(resumed.results).rows
    assert res_rows == ref_rows, "resumed run diverged from reference!"
    output = job.finalize(resumed.results)
    print()
    print(format_table(output.headers, output.rows,
                       title="fig13 after kill + resume (== uninterrupted)"))


def sanitizer_catches_corruption() -> None:
    print("\ninjecting a silent ledger corruption at tick 40...")
    scenario = build_tree_scenario(
        scale_factor=0.05, attack_kind="cbr", attack_rate_mbps=2.0, seed=3
    )
    scenario.attach_policy(FLocPolicy(FLocConfig(s_max=25)))
    faults = FaultSchedule()
    faults.at(40, CounterCorruption(*scenario.target, target="ledger"),
              name="silent-skew")
    faults.install(scenario.engine)
    install_sanitizer(scenario.engine, "strict")
    try:
        scenario.run_seconds(2.0)
    except InvariantViolation as exc:
        print(f"caught: {exc}")
        print(f"(corruption fired at tick 40, flagged at tick {exc.tick})")
    else:
        raise AssertionError("sanitizer missed the corruption")


def main() -> None:
    settings = FunctionalSettings(
        scale=0.05, warmup_seconds=1.0, measure_seconds=2.0, seed=1,
        sanitize="strict",
    )
    interrupted_then_resumed(settings)
    sanitizer_catches_corruption()


if __name__ == "__main__":
    main()
