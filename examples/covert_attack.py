#!/usr/bin/env python
"""Covert attack demo: many innocent-looking flows vs the n_max capability.

Each bot opens `fanout` low-rate connections to *different* destinations
across the target link (paper Section VI-D).  Individually every flow is
TCP-polite; collectively they soak the link.  FLoc's two-part capability
hashes destinations into n_max buckets per source, so a bot's flows
collapse into at most n_max accounting units whose combined rate triggers
MTD-based preferential dropping.

Run:  python examples/covert_attack.py
"""

from repro.analysis.report import format_table
from repro.core.config import FLocConfig
from repro.experiments.common import FunctionalSettings, run_breakdown
from repro.traffic.scenarios import build_tree_scenario


def run_one(scheme: str, fanout: int, settings: FunctionalSettings):
    scenario = build_tree_scenario(
        scale_factor=settings.scale,
        attack_kind="covert",
        attack_rate_mbps=0.6,  # per flow: at or below the fair share
        covert_fanout=fanout,
        n_servers=fanout,
        seed=11,
    )
    cfg = FLocConfig(n_max=2) if scheme == "floc" else None
    return run_breakdown(scenario, scheme, settings, floc_config=cfg)


def main() -> None:
    settings = FunctionalSettings(
        scale=0.1, warmup_seconds=4.0, measure_seconds=8.0, seed=11
    )
    rows = []
    for fanout in (1, 4, 10):
        for scheme in ("floc", "redpd"):
            result = run_one(scheme, fanout, settings)
            b = result.breakdown
            rows.append([scheme, fanout, b.legit_total, b.attack])
            print(f"  ran {scheme} at fanout {fanout}")
    print()
    print(
        format_table(
            ["scheme", "flows per bot", "legit total", "attack"],
            rows,
            title="covert attack: bandwidth split vs per-bot fanout "
            "(FLoc n_max = 2)",
        )
    )
    print()
    print("expected shape: under per-flow fairness (redpd) the attacker's")
    print("share grows with its flow count; under FLoc it stays capped at")
    print("~n_max accounting units per bot regardless of fanout.")


if __name__ == "__main__":
    main()
