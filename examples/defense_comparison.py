#!/usr/bin/env python
"""Compare FLoc against Pushback, RED-PD, FF and no defense under a flood.

Reproduces the heart of the paper's Fig. 8 comparison at one attack rate:
the same CBR flood is thrown at the same link under five different router
policies, and the resulting bandwidth split is printed side by side.

Run:  python examples/defense_comparison.py [per-bot-Mbps]
"""

import sys

from repro.analysis.report import format_table
from repro.experiments.common import FunctionalSettings, run_breakdown
from repro.traffic.scenarios import build_tree_scenario

SCHEMES = ("floc", "pushback", "redpd", "fairshare", "droptail")


def main() -> None:
    rate = float(sys.argv[1]) if len(sys.argv) > 1 else 2.0
    settings = FunctionalSettings(
        scale=0.1, warmup_seconds=4.0, measure_seconds=10.0, seed=3, s_max=25
    )
    rows = []
    for scheme in SCHEMES:
        scenario = build_tree_scenario(
            scale_factor=settings.scale,
            attack_kind="cbr",
            attack_rate_mbps=rate,
            seed=settings.seed,
        )
        result = run_breakdown(scenario, scheme, settings)
        b = result.breakdown
        rows.append(
            [scheme, b.legit_in_legit, b.legit_in_attack, b.attack,
             b.utilization]
        )
        print(f"  ran {scheme}")
    print()
    print(
        format_table(
            ["scheme", "legit (clean domains)", "legit (attack domains)",
             "attack", "utilization"],
            rows,
            title=f"CBR flood at {rate} Mbps per bot - who gets the link?",
        )
    )
    print()
    print("expected shape: floc keeps the most legitimate bandwidth;")
    print("pushback starves legit flows inside attack domains; redpd and")
    print("droptail surrender bandwidth as the attack intensifies.")


if __name__ == "__main__":
    main()
