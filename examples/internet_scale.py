#!/usr/bin/env python
"""Internet-scale simulation: 100k-bot flood against a 40 Gbps link.

Generates a skitter-like AS topology with a CBL-like bot distribution
(paper Section VII), then floods the target link under four strategies:
no defense, per-flow fairness, FLoc without aggregation, and FLoc with
attack-path aggregation.  Prints the Fig. 13-style bandwidth shares.

By default this runs the paper's full scale (10,000 legitimate sources,
100,000 bots, 16,000 pkts/tick target link); pass ``--small`` for a 5x
reduced run that finishes in a couple of seconds.

Run:  python examples/internet_scale.py [--small]
"""

import sys
import time

from repro.analysis.report import format_table
from repro.inet import FluidSimulator, build_internet_scenario


def main() -> None:
    small = "--small" in sys.argv
    size = dict(
        n_as=500, n_legit_sources=2_000, n_legit_ases=100, n_bots=20_000,
        target_capacity=1_000.0,
    ) if small else dict(
        n_as=2_000, n_legit_sources=10_000, n_legit_ases=200, n_bots=100_000,
        target_capacity=16_000.0,
    )
    scenario = build_internet_scenario(
        variant="f-root", placement="localized", seed=7, **size
    )
    cats = scenario.categories()
    print(
        f"topology: {scenario.topology.n_as} ASes, "
        f"{(cats == 0).sum()} legit flows in clean ASes, "
        f"{(cats == 1).sum()} legit flows in attack ASes, "
        f"{(cats == 2).sum()} bots"
    )

    rows = []
    s_max_agg = max(40, size["n_legit_ases"] // 2)
    for label, strategy, s_max in (
        ("no defense", "nd", None),
        ("per-flow fair", "ff", None),
        ("FLoc (no agg)", "floc", None),
        ("FLoc (agg)", "floc", s_max_agg),
    ):
        t0 = time.time()
        sim = FluidSimulator(scenario, strategy=strategy, s_max=s_max)
        result = sim.run(ticks=400, warmup=200)
        rows.append(
            [
                label,
                result.shares["legit_in_legit"],
                result.shares["legit_in_attack"],
                result.shares["attack"],
                f"{time.time() - t0:.1f}s",
            ]
        )
        print(f"  ran {label}")
    print()
    print(
        format_table(
            ["strategy", "legit (clean AS)", "legit (attack AS)", "attack",
             "wall time"],
            rows,
            title="bandwidth shares at the flooded link",
        )
    )


if __name__ == "__main__":
    main()
