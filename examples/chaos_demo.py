#!/usr/bin/env python
"""Chaos-campaign demo: an adaptive shrew, a broken SLO, a minimal repro.

The chaos engine (:mod:`repro.chaos`) samples campaigns — compositions of
infrastructure faults and *adaptive* adversaries — and judges each run
against resilience SLOs.  This demo walks the whole loop by hand:

1. build a campaign with a link flap, a router restart, and an adaptive
   shrew squad that re-phases its bursts whenever FLoc throttles it;
2. run it against the shipped SLO catalog — FLoc holds the floor, the
   campaign passes (the paper's Section IV-B strategy-independence claim
   in action: re-timing does not move an attacker's MTD);
3. raise the legitimate-share floor to an unachievable level, making the
   same campaign *violate* its floor SLO;
4. delta-debug the failing campaign down to a 1-minimal reproducer —
   every remaining fault, squad, and mutation is individually necessary —
   and write it as a replay artifact;
5. re-execute the artifact and verify it still fails byte-identically.

Run:  python examples/chaos_demo.py
"""

import tempfile
from pathlib import Path

from repro.chaos import (
    AttackerSpec,
    CampaignSpec,
    FaultSpec,
    default_slo,
    replay_artifact,
    run_campaign,
    shrink_campaign,
    with_slo,
    write_artifact,
)

# -- 1. a hand-written campaign: two faults + one adaptive shrew squad --
spec = CampaignSpec(
    seed=2024,
    simulator="packet",
    warmup_ticks=300,
    window_ticks=150,
    n_windows=8,
    faults=(
        FaultSpec(kind="link_flap", tick=500, duration=90),
        FaultSpec(kind="router_restart", tick=700),
    ),
    attackers=(
        AttackerSpec(
            kind="shrew",
            bots=3,
            rate_mbps=2.0,
            period_ticks=20,
            mutations=("rephase", "rerandomize"),
        ),
    ),
    slo=default_slo("packet"),
)
spec.validate()

# -- 2. run it: FLoc keeps the legitimate share above the floor ---------
print("== campaign under the shipped SLO catalog ==")
result = run_campaign(spec)
for slo, verdict, detail in result.report.rows():
    print(f"  {slo:9s} {verdict:9s} {detail}")
print(f"  -> ok={result.ok}, run digest {result.digest[:16]}…")

# -- 3. the same campaign with an unachievable floor --------------------
print("\n== same campaign, floor raised to 0.97 ==")
broken = with_slo(spec, floor=0.97)
failing = run_campaign(broken, verify_replay=False)
violated = failing.report.violated()
assert violated is not None, "expected the floor SLO to break"
print(f"  violated: {violated.slo} — {violated.detail}")

# -- 4. shrink to a minimal reproducer ----------------------------------
print("\n== delta-debugging to a minimal reproducer ==")
shrunk = shrink_campaign(broken, violated.slo, log=lambda m: print(f"  {m}"))
print(
    f"  {shrunk.trials} trial(s): {len(spec.faults)} fault(s) -> "
    f"{len(shrunk.minimal.faults)}, "
    f"{spec.mutation_count()} mutation(s) -> "
    f"{shrunk.minimal.mutation_count()}"
)

# -- 5. write the artifact, replay it, verify ---------------------------
with tempfile.TemporaryDirectory() as tmp:
    path = write_artifact(shrunk, Path(tmp) / "reproducer.json")
    print(f"\n== replaying {path.name} ==")
    outcome = replay_artifact(path)
    print(f"  {outcome.summary()}")
    assert outcome.ok, "the artifact must reproduce bit-identically"
print("\nthe reproducer is minimal: removing any remaining component "
      "makes the violation disappear")
