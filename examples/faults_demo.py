#!/usr/bin/env python
"""Fault injection: restart the FLoc router mid-attack and watch it heal.

Builds the scaled-down Section VI tree under a CBR flood with FLoc on the
target link, then injects two faults mid-run:

* the target router's policy is crash-restarted (all volatile state —
  token buckets, MTD records, conformance, aggregation plan — is lost,
  and FLoc falls back to neutral congested-mode admission while its
  estimates re-converge);
* one ingress uplink (``root.0 -> root``) flaps; affected flows reroute
  over a backup cross-link and return to their original paths afterwards.

Three equal measurement phases (pre / during / post) show the dip and the
recovery of legitimate bandwidth.

Run:  python examples/faults_demo.py
"""

from repro import FaultSchedule, FLocConfig, FLocPolicy, build_tree_scenario
from repro.analysis.report import format_table
from repro.net.engine import LinkMonitor


def main() -> None:
    scenario = build_tree_scenario(
        scale_factor=0.1,
        attack_kind="cbr",
        attack_rate_mbps=2.0,
        seed=7,
    )
    # backup path between the root's first two subtrees; idle until the
    # root.0 uplink fails
    scenario.topology.add_duplex_link("root.0", "root.1", capacity=None)
    scenario.attach_policy(
        FLocPolicy(FLocConfig(s_max=25, restart_warmup_ticks=150))
    )

    warmup = scenario.units.seconds_to_ticks(4.0)
    phase = scenario.units.seconds_to_ticks(4.0)
    t1, t2, t3 = warmup + phase, warmup + 2 * phase, warmup + 3 * phase

    monitors = {
        label: scenario.engine.add_monitor(
            *scenario.target, LinkMonitor(start_tick=a, stop_tick=b)
        )
        for label, (a, b) in {
            "pre-fault": (warmup, t1),
            "during faults": (t1, t2),
            "post-fault": (t2, t3),
        }.items()
    }

    faults = FaultSchedule()
    faults.router_restart(*scenario.target, tick=t1)
    faults.link_flap(
        "root.0", "root", down_tick=t1 + phase // 4, up_tick=t1 + 3 * phase // 4
    )
    faults.install(scenario.engine)

    print(f"running {t3} ticks with faults scheduled at:")
    for event in faults.events:
        print(f"  tick {event.tick:>5}: {event.name}")
    scenario.engine.run(t3)

    legit_ids = {f.flow_id for f in scenario.legit_flows}
    budget = scenario.capacity * phase
    rows = []
    for label, monitor in monitors.items():
        legit = sum(
            n for fid, n in monitor.service_counts.items() if fid in legit_ids
        )
        attack = monitor.total_serviced - legit
        rows.append([label, legit / budget, attack / budget])
    print()
    print(
        format_table(
            ["phase", "legit share", "attack share"],
            rows,
            title="legitimate bandwidth through a router restart + link flap",
        )
    )
    pre, post = rows[0][1], rows[2][1]
    print()
    print(f"faults fired: {faults.log}")
    print(f"recovery: post-fault legit share is {post / pre:.0%} of pre-fault")


if __name__ == "__main__":
    main()
