#!/usr/bin/env python
"""Exact-vs-sketch router state ablation: memory bound and accuracy.

Three measurements, recorded in ``BENCH_sketch.json``:

1. **Churn memory** — drive the router's path-state tier with up to 10^6
   distinct path identifiers (the ``PathChurnFloodSource`` pressure,
   minus the packet plumbing) under ``tracemalloc`` and record peak
   traced memory per backend: unbounded exact state grows linearly with
   identifier count; the sketch backend must stay flat at its configured
   budget no matter how many identifiers churn past.
2. **Fold/seed accuracy** — fold known per-path rate EWMAs into
   :class:`~repro.sketch.BoundedPathState` tiers of several widths and
   read them back, reporting mean/max absolute seed error and collision
   rate per memory budget (the measured estimate-error side of the
   sketch's memory guarantee).
3. **End-to-end guarantee error** — one seed-pinned state-exhaustion
   campaign executed per backend at the same path budget; the worst
   fault-free-window legitimate share difference is the price the
   bounded tier pays on the paper's differential guarantee.

``--ci`` shrinks the identifier counts ~10x, writes
``BENCH_sketch.ci.json``, and turns the sketch-backend memory bound
into a hard gate: exit 1 if sketch-mode peak traced memory exceeds
``--memory-budget-mb`` (default 64) or grows with identifier count.

Usage::

    PYTHONPATH=src python benchmarks/sketch_bench.py [--ci] [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc

from repro.core.config import FLocConfig
from repro.core.router import FLocPolicy
from repro.net.engine import Engine
from repro.net.topology import Topology
from repro.sketch import BoundedPathState

#: Identifier counts per churn arm.  Exact-unbounded is capped at 10^5
#: identifiers — the point of that arm is the slope, and a million live
#: _PathState objects is exactly the blow-up the sketch tier exists to
#: avoid.
FULL_COUNTS = {
    "exact-unbounded": (10_000, 100_000),
    "exact-lru": (10_000, 100_000, 1_000_000),
    "sketch": (10_000, 100_000, 1_000_000),
}
CI_COUNTS = {
    "exact-unbounded": (10_000, 50_000),
    "exact-lru": (10_000, 100_000),
    "sketch": (10_000, 100_000, 1_000_000),
}

#: Path budget shared by the bounded arms (exact-lru hot set = sketch
#: hot tier) and the end-to-end campaigns.
PATH_BUDGET = 1024

#: ValueSketch widths for the accuracy sweep (columns; memory per tier
#: scales linearly with width).
ACCURACY_WIDTHS = (1024, 4096, 16384)
ACCURACY_PATHS = 50_000


def _policy(backend: str, bounded: bool) -> FLocPolicy:
    topo = Topology()
    topo.add_duplex_link("a", "b", capacity=10.0, buffer=50)
    engine = Engine(topo, seed=1)
    kwargs = {}
    if backend == "sketch":
        kwargs = dict(state_backend="sketch", sketch_hot_paths=PATH_BUDGET)
    elif bounded:
        kwargs = dict(max_tracked_paths=PATH_BUDGET)
    policy = FLocPolicy(FLocConfig(**kwargs))
    policy.attach(topo.link("a", "b"), engine)
    return policy


def churn_arm(arm: str, n_ids: int) -> dict:
    """Touch ``n_ids`` distinct path identifiers; report peak memory."""
    policy = _policy(
        "sketch" if arm == "sketch" else "exact",
        bounded=arm == "exact-lru",
    )
    tracemalloc.start()
    start = time.perf_counter()
    for i in range(n_ids):
        policy._path_state((10_000_000 + i, 1), tick=i)
    seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {
        "arm": arm,
        "path_ids": n_ids,
        "peak_traced_mb": round(peak / 2**20, 3),
        "tracked_paths": len(policy.paths),
        "evictions": policy.eviction_stats["memory-pressure"],
        "seconds": round(seconds, 3),
    }


def accuracy_arm(width: int, n_paths: int) -> dict:
    """Fold known rates, seed them back, measure the estimate error."""
    tier = BoundedPathState(width, depth=4)
    for i in range(n_paths):
        tier.fold_path((i,), lambda_rate=float(i % 50) / 10.0,
                       rtt_ewma=20.0, conformance=0.5)
    abs_errors = []
    for i in range(0, n_paths, max(1, n_paths // 2000)):
        seeded = tier.seed_path((i,))
        assert seeded is not None
        abs_errors.append(abs(seeded[0] - float(i % 50) / 10.0))
    return {
        "sketch_width": width,
        "memory_mb": round(tier.memory_bytes / 2**20, 3),
        "folded_paths": n_paths,
        "mean_abs_error_pkts_per_tick": round(
            sum(abs_errors) / len(abs_errors), 4
        ),
        "max_abs_error_pkts_per_tick": round(max(abs_errors), 4),
        "collision_rate": round(tier.collisions_total / n_paths, 4),
        "fill_ratio": round(tier.lambda_sketch.fill_ratio(), 4),
    }


def end_to_end_arm() -> dict:
    """Same exhaustion campaign per backend at one path budget."""
    from repro.chaos.campaign import execute_campaign
    from repro.chaos.slo import impact_interval, _overlaps  # noqa: F401
    from repro.chaos.spec import exhaustion_campaign

    shares = {}
    for backend in ("exact", "sketch"):
        spec = exhaustion_campaign(
            0, 0, state_backend=backend, max_tracked_paths=PATH_BUDGET
        )
        m = execute_campaign(spec)
        shares[backend] = round(
            min(w.legit_share for w in m.windows), 4
        )
    return {
        "path_budget": PATH_BUDGET,
        "worst_window_legit_share": shares,
        "guarantee_error": round(shares["exact"] - shares["sketch"], 4),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ci", action="store_true",
                        help="smaller counts, hard memory gate, "
                             "BENCH_sketch.ci.json default output")
    parser.add_argument("--out", default=None, help="output JSON path")
    parser.add_argument("--memory-budget-mb", type=float, default=64.0,
                        help="--ci gate: max sketch-arm peak traced MiB")
    args = parser.parse_args(argv)
    out = args.out or ("BENCH_sketch.ci.json" if args.ci else
                       "BENCH_sketch.json")
    counts = CI_COUNTS if args.ci else FULL_COUNTS

    churn = []
    for arm, sizes in counts.items():
        for n_ids in sizes:
            row = churn_arm(arm, n_ids)
            churn.append(row)
            print(json.dumps(row), file=sys.stderr)

    accuracy = [
        accuracy_arm(width, ACCURACY_PATHS) for width in ACCURACY_WIDTHS
    ]
    end_to_end = None if args.ci else end_to_end_arm()

    sketch_rows = [r for r in churn if r["arm"] == "sketch"]
    sketch_peaks = [r["peak_traced_mb"] for r in sketch_rows]
    payload = {
        "schema": 1,
        "mode": "ci" if args.ci else "full",
        "path_budget": PATH_BUDGET,
        "churn_memory": churn,
        "sketch_peak_mb_at_max_ids": sketch_peaks[-1],
        "accuracy_per_budget": accuracy,
        "end_to_end": end_to_end,
        "note": (
            "peak_traced_mb is tracemalloc peak for the churn loop only; "
            "exact-unbounded grows with path_ids, the sketch arm must "
            "not (bounded-memory contract)"
        ),
    }
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(json.dumps(payload, indent=2))

    if args.ci:
        # hard gates: flat sketch memory across a 100x identifier range,
        # and an absolute ceiling
        worst = max(sketch_peaks)
        if worst > args.memory_budget_mb:
            print(
                f"GATE FAIL: sketch peak {worst} MiB > budget "
                f"{args.memory_budget_mb} MiB",
                file=sys.stderr,
            )
            return 1
        if sketch_peaks[-1] > sketch_peaks[0] * 1.5 + 1.0:
            print(
                f"GATE FAIL: sketch peak grew with identifier count "
                f"({sketch_peaks[0]} -> {sketch_peaks[-1]} MiB)",
                file=sys.stderr,
            )
            return 1
        print("memory gates passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
