"""FIG-14 bench: Internet-scale bandwidth shares, dispersed attacks."""

from conftest import emit
from test_fig13_internet_localized import assert_strategy_shapes

from repro.analysis.report import format_table
from repro.experiments.fig13 import run_fig13, run_fig14


def test_fig14_internet_dispersed(benchmark):
    variants = ("f-root", "h-root", "jpn")
    result = benchmark.pedantic(
        lambda: run_fig14(variants=variants), rounds=1, iterations=1
    )
    emit(
        format_table(
            ["variant", "strategy", "legit-legit", "legit-attack", "attack",
             "util"],
            result.rows(),
            title="FIG-14: bandwidth shares at the flooded link "
            "(dispersed attacks, 3x attack ASes)",
        )
    )
    assert_strategy_shapes(result, variants)

    # paper shape specific to dispersion: with attack sources spread over
    # 3x the ASes, legitimate *paths* keep less than in the localized case
    # (more attack identifiers share the link), while legitimate flows in
    # attack ASes pick up share
    localized = run_fig13(placement="localized", variants=("f-root",))
    loc_na = localized.results[("f-root", "NA")]
    dis_na = result.results[("f-root", "NA")]
    assert (
        dis_na.shares["legit_in_legit"]
        <= loc_na.shares["legit_in_legit"] + 0.03
    )
    assert (
        dis_na.shares["legit_in_attack"]
        >= loc_na.shares["legit_in_attack"] - 0.03
    )
