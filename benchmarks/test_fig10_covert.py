"""FIG-10 bench: covert attacks vs fanout for FLoc / Pushback / RED-PD."""

from conftest import emit

from repro.analysis.report import format_table
from repro.experiments.fig10 import run_fig10

FANOUTS = (1, 4, 10)


def test_fig10_covert(benchmark, settings):
    result = benchmark.pedantic(
        lambda: run_fig10(settings, fanouts=FANOUTS, n_max=2),
        rounds=1,
        iterations=1,
    )
    emit(
        format_table(
            ["scheme", "fanout", "legit total", "attack", "util"],
            result.rows(),
            title=f"FIG-10: covert attack (n_max = {result.n_max}, "
            f"{result.per_flow_rate_mbps} Mbps per flow)",
        )
    )

    floc = {f: result.breakdowns[("floc", f)] for f in FANOUTS}
    redpd = {f: result.breakdowns[("redpd", f)] for f in FANOUTS}

    # paper shape 1: under FLoc the attack share stays capped as fanout
    # grows — a bot's flows collapse into n_max accounting units
    assert floc[10].attack <= floc[1].attack + 0.15
    assert floc[10].legit_total > 0.6

    # paper shape 2: per-flow fairness (RED-PD) hands bandwidth to whoever
    # owns the most flows — attack share grows with fanout
    assert redpd[10].attack > redpd[1].attack
    # and at high fanout FLoc protects much more legitimate traffic
    assert floc[10].legit_total > redpd[10].legit_total
