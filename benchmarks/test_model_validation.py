"""Substrate fidelity: the packet engine vs the paper's analytic model.

Not a paper figure — this is the calibration table a reproduction should
publish: how closely does the simulated TCP behaviour match the model
FLoc's equations assume?
"""

from conftest import emit

from repro.analysis.report import format_table
from repro.tcp.validation import run_validation_sweep


def test_model_validation(benchmark):
    sweep = benchmark.pedantic(
        lambda: run_validation_sweep(flow_counts=(4, 8, 16, 32)),
        rounds=1,
        iterations=1,
    )
    emit(
        format_table(
            ["flows", "utilization", "drop rate (meas)", "drop rate (model)",
             "meas/model", "estimated flows"],
            [
                [p.n_flows, p.utilization, p.measured_drop_rate,
                 p.model_drop_rate, p.drop_rate_ratio, p.estimated_flows]
                for p in sweep
            ],
            title="SUBSTRATE: packet engine vs analytic TCP model",
        )
    )
    for point in sweep:
        assert point.utilization > 0.9
        assert 0.3 < point.drop_rate_ratio < 8.0
        assert 0.3 < point.flow_count_ratio < 3.0
    # convergence toward the model with multiplexing
    ratios = [p.drop_rate_ratio for p in sweep]
    assert ratios[-1] < ratios[0]
