"""Ablation: FLoc with vs without the Eq.-(IV.5) preferential drop policy.

Preferential drops are what protect legitimate flows *inside* attack
domains — per-path token buckets alone confine the attack to its domains
but split each contaminated domain's allocation between bots and victims.
"""

from conftest import emit

from repro.analysis.report import format_table
from repro.core.config import FLocConfig
from repro.experiments.common import mean, run_breakdown
from repro.traffic.scenarios import build_tree_scenario


def test_ablation_preferential_drop(benchmark, settings):
    def run():
        out = {}
        for label, pref in (("with", True), ("without", False)):
            scenario = build_tree_scenario(
                scale_factor=settings.scale,
                attack_kind="cbr",
                attack_rate_mbps=2.0,
                seed=settings.seed,
            )
            cfg = FLocConfig(preferential_drop=pref)
            out[label] = run_breakdown(scenario, "floc", settings, cfg)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for label, result in results.items():
        b = result.breakdown
        rows.append(
            [
                f"{label} preferential drop",
                b.legit_in_attack,
                b.attack,
                mean(result.legit_in_attack_rates),
                mean(result.attack_rates),
            ]
        )
    emit(
        format_table(
            ["variant", "legit-in-attack share", "attack share",
             "legit/flow Mbps", "bot/flow Mbps"],
            rows,
            title="ABLATION: preferential drop (Eq. IV.5)",
        )
    )

    with_pref = results["with"].breakdown
    without = results["without"].breakdown
    # without preferential drops, bots keep far more bandwidth ...
    assert without.attack > 1.5 * max(with_pref.attack, 0.02)
    # ... and the per-flow advantage of victims over bots disappears
    adv_with = mean(results["with"].legit_in_attack_rates) / max(
        mean(results["with"].attack_rates), 1e-9
    )
    adv_without = mean(results["without"].legit_in_attack_rates) / max(
        mean(results["without"].attack_rates), 1e-9
    )
    assert adv_with > adv_without
