#!/usr/bin/env python3
"""Diff two benchmark telemetry files: per-figure wall-time deltas.

This is the standard way to prove (or gate) a speedup claim in this
repo.  Run the benchmarks on the base commit and on your branch, keep
both ``BENCH_*.json`` files, and diff them::

    python benchmarks/compare.py BENCH_base.json BENCH_telemetry.json
    python benchmarks/compare.py baseline-dir/ new-dir/ --fail-above 10

Inputs are the ``BENCH_*.json`` files written by
``benchmarks/conftest.py`` (``pytest benchmarks/``): a file path, or a
directory holding one or more of them (matched across the two sides by
file name).  The report prints one row per figure — base seconds, new
seconds, absolute and relative delta — a per-subsystem diff of the
profiled smoke scenario, and a total.

``--fail-above PCT`` turns the diff into a regression gate: exit 1 if
any figure got slower by more than PCT percent.  Figures faster than
``--min-seconds`` (default 0.5s) on both sides are shown but never
gate — their wall time is noise-dominated.  Exit codes: 0 ok, 1
regression above the threshold, 2 unusable inputs.

Stdlib-only on purpose: CI lanes and release scripts can run it without
installing the package.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Tuple


def _load_file(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or "figures_wall_seconds" not in payload:
        raise ValueError(
            f"{path} is not a benchmarks BENCH_*.json payload "
            "(missing figures_wall_seconds)"
        )
    return payload


def load_side(path: str) -> Dict[str, Dict]:
    """``{file name: payload}`` for one side of the comparison."""
    if os.path.isdir(path):
        names = sorted(
            n
            for n in os.listdir(path)
            if n.startswith("BENCH_") and n.endswith(".json")
        )
        if not names:
            raise ValueError(f"no BENCH_*.json files in {path}")
        return {n: _load_file(os.path.join(path, n)) for n in names}
    return {os.path.basename(path): _load_file(path)}


def _short(nodeid: str) -> str:
    """benchmarks/test_fig07_robustness.py::test_x -> fig07_robustness::test_x"""
    name = nodeid.split("/")[-1]
    name = name.replace("test_", "", 1).replace(".py", "")
    return name


def _pct(base: float, new: float) -> Optional[float]:
    if base <= 0:
        return None
    return (new - base) / base * 100.0


def compare_payloads(
    base: Dict, new: Dict, fail_above: Optional[float], min_seconds: float
) -> Tuple[List[str], List[str]]:
    """(report lines, regression descriptions past the threshold)."""
    lines: List[str] = []
    regressions: List[str] = []
    base_figs: Dict[str, float] = base["figures_wall_seconds"]
    new_figs: Dict[str, float] = new["figures_wall_seconds"]
    scale = (base.get("bench_scale"), new.get("bench_scale"))
    seconds = (base.get("bench_seconds"), new.get("bench_seconds"))
    if scale[0] != scale[1] or seconds[0] != seconds[1]:
        lines.append(
            f"  WARNING: bench knobs differ (scale {scale[0]} -> {scale[1]}, "
            f"seconds {seconds[0]} -> {seconds[1]}); deltas are not "
            "like-for-like"
        )
    header = f"  {'figure':<44} {'base':>8} {'new':>8} {'delta':>8} {'%':>8}"
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    total_base = total_new = 0.0
    for nodeid in sorted(set(base_figs) | set(new_figs)):
        b = base_figs.get(nodeid)
        n = new_figs.get(nodeid)
        label = _short(nodeid)[:44]
        if b is None or n is None:
            side = "base" if n is None else "new"
            lines.append(f"  {label:<44} {'only in ' + side:>35}")
            continue
        total_base += b
        total_new += n
        pct = _pct(b, n)
        pct_text = f"{pct:+8.1f}" if pct is not None else "     n/a"
        lines.append(
            f"  {label:<44} {b:>7.2f}s {n:>7.2f}s {n - b:>+7.2f}s {pct_text}"
        )
        noise = b < min_seconds and n < min_seconds
        if (
            fail_above is not None
            and pct is not None
            and pct > fail_above
            and not noise
        ):
            regressions.append(
                f"{label}: {b:.2f}s -> {n:.2f}s ({pct:+.1f}% > "
                f"+{fail_above:g}%)"
            )
    pct = _pct(total_base, total_new)
    pct_text = f"{pct:+8.1f}" if pct is not None else "     n/a"
    lines.append("  " + "-" * (len(header) - 2))
    lines.append(
        f"  {'total':<44} {total_base:>7.2f}s {total_new:>7.2f}s "
        f"{total_new - total_base:>+7.2f}s {pct_text}"
    )
    smoke = _smoke_lines(base, new)
    if smoke:
        lines.append("")
        lines.append("  profiled smoke, per-subsystem seconds:")
        lines.extend(smoke)
    return lines, regressions


def _smoke_lines(base: Dict, new: Dict) -> List[str]:
    b = (base.get("profiled_smoke") or {}).get("totals_seconds")
    n = (new.get("profiled_smoke") or {}).get("totals_seconds")
    if not isinstance(b, dict) or not isinstance(n, dict):
        return []
    lines = []
    for subsystem in sorted(set(b) | set(n)):
        bs, ns = b.get(subsystem, 0.0), n.get(subsystem, 0.0)
        pct = _pct(bs, ns)
        pct_text = f"{pct:+8.1f}" if pct is not None else "     n/a"
        lines.append(
            f"    {subsystem:<20} {bs:>8.4f}  {ns:>8.4f}  {pct_text}"
        )
    return lines


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="diff two BENCH_*.json files (or directories of them): "
        "per-figure wall-time deltas and an optional regression gate",
    )
    parser.add_argument(
        "base", help="baseline BENCH_*.json file, or a directory of them"
    )
    parser.add_argument(
        "new", help="candidate BENCH_*.json file, or a directory of them"
    )
    parser.add_argument(
        "--fail-above", type=float, metavar="PCT", default=None,
        help="exit 1 if any figure slowed down by more than PCT percent",
    )
    parser.add_argument(
        "--min-seconds", type=float, metavar="S", default=0.5,
        help="figures under S seconds on both sides never trip the gate "
        "(noise floor; default 0.5)",
    )
    args = parser.parse_args(argv)

    try:
        base_side = load_side(args.base)
        new_side = load_side(args.new)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        sys.stderr.write(f"error: {exc}\n")
        return 2

    if len(base_side) == 1 and len(new_side) == 1:
        # single file on each side: compare them regardless of file name
        pairs = [
            (next(iter(base_side)), next(iter(new_side)))
        ]
    else:
        common = sorted(set(base_side) & set(new_side))
        if not common:
            sys.stderr.write(
                f"error: no BENCH_*.json names in common between "
                f"{args.base} and {args.new}\n"
            )
            return 2
        pairs = [(name, name) for name in common]

    all_regressions: List[str] = []
    for base_name, new_name in pairs:
        title = (
            base_name
            if base_name == new_name
            else f"{base_name} -> {new_name}"
        )
        print(title)
        lines, regressions = compare_payloads(
            base_side[base_name],
            new_side[new_name],
            args.fail_above,
            args.min_seconds,
        )
        print("\n".join(lines))
        print()
        all_regressions.extend(regressions)

    if all_regressions:
        sys.stderr.write("regressions above threshold:\n")
        for item in all_regressions:
            sys.stderr.write(f"  {item}\n")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
