"""FIG-6 bench: attack confinement for TCP / CBR / Shrew attacks."""

import pytest
from conftest import emit

from repro.analysis.report import format_table
from repro.experiments.common import mean
from repro.experiments.fig06 import run_fig06


@pytest.mark.parametrize("attack_kind", ["tcp", "cbr", "shrew"])
def test_fig06_confinement(benchmark, settings, attack_kind):
    result = benchmark.pedantic(
        lambda: run_fig06(attack_kind, settings), rounds=1, iterations=1
    )
    legit = result.legit_path_means
    attack = result.attack_path_means
    emit(
        format_table(
            ["path class", "paths", "mean Mbps", "min", "max"],
            [
                ["legit", len(legit), mean(legit), min(legit), max(legit)],
                ["attack", len(attack), mean(attack), min(attack), max(attack)],
                ["fair/path", "-", result.fair_path_mbps, "-", "-"],
            ],
            title=f"FIG-6({attack_kind}): per-path bandwidth under attack",
        )
    )

    fair = result.fair_path_mbps
    # paper shape: every legitimate path keeps close to its fair share —
    # the attack is confined to the paths that originate it
    assert mean(legit) > 0.75 * fair
    assert min(legit) > 0.45 * fair
    # attack paths never take grossly more than their allocation
    assert mean(attack) < 1.6 * fair

    if attack_kind == "tcp":
        # adaptive attackers are indistinguishable per flow; confinement
        # keeps every path near fair regardless of population
        assert max(attack) < 1.8 * fair
    else:
        # for CBR/Shrew the token bucket activates early on attack paths:
        # legitimate paths do at least as well as under the TCP attack
        assert mean(legit) > 0.8 * fair
