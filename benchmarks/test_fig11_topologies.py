"""FIG-11/12 bench: Internet-scale topology generation statistics."""

from conftest import emit

from repro.analysis.report import format_table
from repro.experiments.fig11 import run_fig11


def test_fig11_fig12_topologies(benchmark):
    def build():
        return {
            "localized": run_fig11("localized"),
            "dispersed": run_fig11("dispersed"),
        }

    stats = benchmark.pedantic(build, rounds=1, iterations=1)

    rows = []
    for placement, per_variant in stats.items():
        for s in per_variant:
            rows.append(
                [
                    placement,
                    s.variant,
                    s.n_as,
                    s.n_attack_ases,
                    s.red_links,
                    round(s.bot_concentration_top_10pct, 3),
                    round(s.legit_in_attack_as_fraction, 3),
                    round(s.mean_attack_depth, 2),
                ]
            )
    emit(
        format_table(
            ["placement", "variant", "ASes", "attack ASes", "red links",
             "bot conc.", "legit overlap", "attack depth"],
            rows,
            title="FIG-11/12: generated topology statistics",
        )
    )

    for placement, per_variant in stats.items():
        for s in per_variant:
            # CBL-like concentration: the top tenth of contaminated ASes
            # hosts the overwhelming majority of bots
            assert s.bot_concentration_top_10pct > 0.85
            # the intentional 30% legit placement into attack ASes
            assert s.legit_in_attack_as_fraction > 0.2
    # dispersion: Fig. 12 uses 3x more attack ASes, hence more red links
    for loc, dis in zip(stats["localized"], stats["dispersed"]):
        assert dis.n_attack_ases > 2 * loc.n_attack_ases
        assert dis.red_links > loc.red_links
