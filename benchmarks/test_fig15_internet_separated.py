"""FIG-15 bench: Internet-scale shares with separated legit/attack ASes."""

from conftest import emit

from repro.analysis.report import format_table
from repro.experiments.fig13 import run_fig15


def test_fig15_internet_separated(benchmark):
    variants = ("f-root", "h-root", "jpn")
    result = benchmark.pedantic(
        lambda: run_fig15(variants=variants), rounds=1, iterations=1
    )
    emit(
        format_table(
            ["variant", "strategy", "legit-legit", "legit-attack", "attack",
             "util"],
            result.rows(),
            title="FIG-15: bandwidth shares, separated placement "
            "(no legitimate sources inside attack ASes)",
        )
    )

    for variant in variants:
        nd = result.results[(variant, "ND")]
        na = result.results[(variant, "NA")]
        a_lo = result.results[(variant, "A-lo")]
        # with separation, there is no legit-in-attack category to protect
        assert na.shares["legit_in_attack"] < 0.02
        # ... so FLoc's guarantees concentrate on legitimate paths
        assert na.shares["legit_in_legit"] > 0.5
        assert nd.legit_total < 0.10
        # aggregation can only help legitimate paths here
        assert (
            a_lo.shares["legit_in_legit"]
            >= na.shares["legit_in_legit"] - 0.02
        )
