"""FIG-9 bench: legitimate-path aggregation evens per-flow bandwidth."""

from conftest import emit

from repro.analysis.report import format_table
from repro.experiments.common import mean
from repro.experiments.fig09 import run_fig09


def test_fig09_legit_aggregation(benchmark, settings):
    result = benchmark.pedantic(
        lambda: run_fig09(settings), rounds=1, iterations=1
    )
    rows = []
    for label, variant in (
        ("without aggregation", result.without_agg),
        ("with aggregation", result.with_agg),
    ):
        rows.append(
            [
                label,
                mean(variant.small_domain_rates),
                mean(variant.big_domain_rates),
                variant.small_big_ratio,
                mean(variant.attack_path_rates),
            ]
        )
    emit(
        format_table(
            ["variant", "small-domain flow Mbps", "big-domain flow Mbps",
             "small/big ratio", "attack-path legit Mbps"],
            rows,
            title="FIG-9: per-flow bandwidth by domain population",
        )
    )

    # paper shape 1: with per-path allocation, flows of under-populated
    # domains do strictly better than flows of populated domains
    assert result.without_agg.small_big_ratio > 1.05
    # paper shape 2: aggregation makes allocation flow-proportional — the
    # population advantage shrinks decisively toward parity
    assert result.with_agg.small_big_ratio < result.without_agg.small_big_ratio
    assert abs(result.with_agg.small_big_ratio - 1.0) < abs(
        result.without_agg.small_big_ratio - 1.0
    ) + 0.02
    # aggregation must not starve anyone
    assert mean(result.with_agg.all_rates) > 0.6 * mean(
        result.without_agg.all_rates
    )
    # legitimate flows of (aggregated) attack paths keep link access
    assert mean(result.with_agg.attack_path_rates) > 0.0
