"""FIG-3 bench: packet-size distribution (synthetic trace)."""

from conftest import emit

from repro.analysis.report import format_table
from repro.experiments.fig03 import run_fig03


def test_fig03_packet_sizes(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig03(n_samples=100_000, seed=1), rounds=1, iterations=1
    )
    rows = [
        [size, frac] for size, frac in sorted(result.mode_fractions.items())
    ]
    emit(
        format_table(
            ["size (B)", "fraction"],
            rows,
            title="FIG-3: packet-size modes (synthetic trace)",
        )
    )

    fr = result.mode_fractions
    # paper shape: bimodal at 40 B and 1500 B with a ~1300 B VPN mode
    assert fr[40] > 0.30
    assert fr[1500] > 0.35
    assert 0.05 < fr[1300] < 0.20
    # the CDF ends at 1.0 and is monotone
    ys = [y for _, y in result.cdf]
    assert ys == sorted(ys) and abs(ys[-1] - 1.0) < 1e-9
