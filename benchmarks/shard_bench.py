#!/usr/bin/env python
"""Shard-parallel fluid-simulator benchmark at 10^6 flows.

Builds a million-flow internet scenario (~950k bots + 100k legitimate
sources over ~1200 ASes), runs it once serially and once sharded over a
fleet of lock-step workers — with a planned SIGKILL against one shard
worker mid-run, so the barrier-epoch checkpoint/salvage path is part of
the measured run, not a separate test — verifies the merged result is
byte-identical to serial, and records wall times in ``BENCH_shard.json``.

The recorded ``cores`` field matters for reading the numbers: sharding
pays spawn, per-tick file exchange, and per-epoch checkpoints of
million-element state arrays; on a single-core box it cannot beat
serial, and even on multicore boxes the exchange overhead means the
speedup is honest only for big per-tick work (which 10^6 flows is).

Usage::

    PYTHONPATH=src python benchmarks/shard_bench.py [--shards N] [--out FILE]
    PYTHONPATH=src python benchmarks/shard_bench.py --small   # CI-sized
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import shutil
import sys
import tempfile
import time

from repro.fleet import (
    FleetOptions,
    ProcessFault,
    ProcessFaultPlan,
    ShardUnitTask,
    run_fleet,
)
from repro.inet.scenarios import build_internet_scenario
from repro.inet.shard import merge_shard_results
from repro.inet.simulator import FluidSimulator
from repro.runner import CheckpointStore

FULL = {
    "n_as": 1200,
    "n_legit_sources": 100_000,
    "n_legit_ases": 300,
    "n_bots": 950_000,
    "target_capacity": 50_000.0,
    "ticks": 60,
    "warmup": 30,
    "seed": 7,
    "build_flow_links": False,
}

#: CI-sized variant: same code paths (fault included), ~50x fewer flows.
SMALL = dict(
    FULL,
    n_as=300,
    n_legit_sources=2_000,
    n_legit_ases=60,
    n_bots=20_000,
    target_capacity=1_000.0,
)

EPOCH_TICKS = 20
STRATEGY = "floc"
UNIT = "bench:fluid"


def _scenario(cfg: dict):
    return build_internet_scenario(
        variant="f-root",
        placement="localized",
        n_as=cfg["n_as"],
        n_legit_sources=cfg["n_legit_sources"],
        n_legit_ases=cfg["n_legit_ases"],
        n_bots=cfg["n_bots"],
        target_capacity=cfg["target_capacity"],
        seed=cfg["seed"],
        build_flow_links=cfg["build_flow_links"],
    )


def _tasks(cfg: dict, n_shards: int):
    return [
        ShardUnitTask(
            figure="fig13",
            unit=UNIT,
            variant="f-root",
            placement="localized",
            label="bench",
            strategy=STRATEGY,
            s_max=None,
            shard=shard,
            n_shards=n_shards,
            epoch_ticks=EPOCH_TICKS,
            barrier_timeout_seconds=300.0,
            settings=dict(cfg),
        )
        for shard in range(n_shards)
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--shards", type=int, default=None,
        help="shard count (default: min(2, cpu count))",
    )
    parser.add_argument(
        "--small", action="store_true",
        help="CI-sized run (~22k flows) instead of the 10^6-flow scenario",
    )
    parser.add_argument(
        "--out", default="BENCH_shard.json", help="output JSON path"
    )
    args = parser.parse_args(argv)

    cfg = SMALL if args.small else FULL
    cores = os.cpu_count() or 1
    shards = args.shards if args.shards is not None else max(2, min(2, cores))

    start = time.perf_counter()
    scenario = _scenario(cfg)
    build_seconds = time.perf_counter() - start
    n_flows = scenario.n_flows
    print(
        f"cores={cores} shards={shards} flows={n_flows:,} "
        f"(scenario build {build_seconds:.2f}s)",
        file=sys.stderr,
    )

    print("serial run...", file=sys.stderr)
    sim = FluidSimulator(
        scenario, strategy=STRATEGY, seed=cfg["seed"]
    )
    start = time.perf_counter()
    serial = sim.run(ticks=cfg["ticks"], warmup=cfg["warmup"])
    serial_seconds = time.perf_counter() - start

    # the kill lands mid-run on shard 0's worker: the supervisor must
    # convict it, respawn, and resume the shard from its last barrier-
    # epoch checkpoint while the surviving shards wait at the barrier
    tasks = _tasks(cfg, shards)
    plan = ProcessFaultPlan(
        faults=(
            ProcessFault(
                task=tasks[0].name,
                kind="kill_worker",
                delay_seconds=max(0.3, serial_seconds / 4.0),
            ),
        )
    )
    scratch = tempfile.mkdtemp(prefix="shard-bench-")
    try:
        print(f"sharded run ({shards} workers, 1 planned SIGKILL)...",
              file=sys.stderr)
        start = time.perf_counter()
        fleet = run_fleet(
            tasks,
            CheckpointStore(os.path.join(scratch, "store")),
            FleetOptions(
                workers=shards,
                fault_plan=plan,
                heartbeat_timeout_seconds=5.0,
                max_worker_deaths=3,
            ),
        )
        shard_seconds = time.perf_counter() - start
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    if fleet.status != "ok":
        raise SystemExit(f"sharded run ended {fleet.status}, not ok")
    merged = merge_shard_results([fleet.results[t.name] for t in tasks])
    if pickle.dumps(merged) != pickle.dumps(serial):
        raise SystemExit("sharded result diverged from serial")
    deaths = {o.name: o.worker_deaths for o in fleet.outcomes}

    payload = {
        "schema": 1,
        "cores": cores,
        "shards": shards,
        "flows": n_flows,
        "n_as": cfg["n_as"],
        "ticks": cfg["ticks"],
        "epoch_ticks": EPOCH_TICKS,
        "strategy": STRATEGY,
        "scenario_build_seconds": round(build_seconds, 4),
        "serial_seconds": round(serial_seconds, 4),
        "shard_seconds": round(shard_seconds, 4),
        "speedup": round(serial_seconds / shard_seconds, 3),
        "worker_deaths": deaths,
        "killed_shard_salvaged": deaths.get(tasks[0].name, 0) >= 1,
        "result_identical": True,
        "note": (
            "shard_seconds includes one SIGKILLed shard worker salvaged "
            "from its barrier-epoch checkpoint; sharding pays spawn + "
            "per-tick file exchange + per-epoch checkpoints, so speedup "
            "needs cores >= shards and large per-tick work"
        ),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
