"""FIG-8 bench: differential bandwidth guarantees vs attack rate."""

from conftest import emit

from repro.analysis.report import format_table
from repro.experiments.fig08 import run_fig08

RATES = (0.2, 0.8, 2.0, 4.0)


def test_fig08_differential(benchmark, settings):
    result = benchmark.pedantic(
        lambda: run_fig08(settings, attack_rates_mbps=RATES, s_max=25),
        rounds=1,
        iterations=1,
    )
    emit(
        format_table(
            ["scheme", "bot Mbps", "legit-legit", "legit-attack", "attack",
             "util"],
            result.rows(),
            title="FIG-8: bandwidth shares by category (|S|max = 25)",
        )
    )

    floc = {r: result.breakdowns[("floc", r)] for r in RATES}
    push = {r: result.breakdowns[("pushback", r)] for r in RATES}
    redpd = {r: result.breakdowns[("redpd", r)] for r in RATES}

    # paper shape 1: FLoc keeps the legitimate-path share high (the paper
    # reports > 80% ~ 21/25 shares) at every attack rate
    for rate in RATES:
        assert floc[rate].legit_in_legit > 0.6, rate

    # paper shape 2: as bots speed up, FLoc clamps them harder — attack
    # share is non-increasing from the slowest to the fastest bots
    assert floc[4.0].attack <= floc[0.2].attack + 0.05

    # paper shape 3: Pushback's collateral damage — legitimate flows of
    # attack paths get less than under FLoc at high rates
    assert push[4.0].legit_in_attack < floc[4.0].legit_in_attack

    # paper shape 4: RED-PD loses more of the link to fast attackers than
    # FLoc does
    assert redpd[4.0].attack > floc[4.0].attack

    # paper shape 5: FLoc wins on total legitimate bandwidth at all rates
    for rate in RATES:
        assert floc[rate].legit_total >= push[rate].legit_total - 0.03
        assert floc[rate].legit_total >= redpd[rate].legit_total - 0.03
