"""FIG-13 bench: Internet-scale bandwidth shares, localized attacks."""

from conftest import emit

from repro.analysis.report import format_table
from repro.experiments.fig13 import run_fig13


def assert_strategy_shapes(result, variants):
    """The Fig. 13/14 shape claims, shared with the dispersed bench."""
    for variant in variants:
        nd = result.results[(variant, "ND")]
        ff = result.results[(variant, "FF")]
        na = result.results[(variant, "NA")]
        a_hi = result.results[(variant, "A-hi")]
        a_lo = result.results[(variant, "A-lo")]

        # no defense: legitimate flows are essentially denied service
        assert nd.legit_total < 0.10, variant
        # per-flow fairness recovers some bandwidth but attackers dominate
        assert ff.legit_total > nd.legit_total + 0.10, variant
        assert ff.shares["attack"] > ff.legit_total, variant
        # FLoc localises the attack: legitimate flows hold the majority
        assert na.legit_total > 0.5, variant
        assert na.legit_total > ff.legit_total, variant
        # aggregation favours legitimate paths and squeezes attack paths
        assert (
            a_lo.shares["legit_in_legit"]
            >= na.shares["legit_in_legit"] - 0.02
        ), variant
        assert (
            a_lo.shares["legit_in_attack"]
            <= na.shares["legit_in_attack"] + 0.02
        ), variant
        # within attack ASes, legitimate flows beat bots per flow
        assert (
            na.per_flow_mean["legit_in_attack"] > na.per_flow_mean["attack"]
        ), variant


def test_fig13_internet_localized(benchmark):
    variants = ("f-root", "h-root", "jpn")
    result = benchmark.pedantic(
        lambda: run_fig13(placement="localized", variants=variants),
        rounds=1,
        iterations=1,
    )
    emit(
        format_table(
            ["variant", "strategy", "legit-legit", "legit-attack", "attack",
             "util"],
            result.rows(),
            title="FIG-13: bandwidth shares at the flooded link "
            "(localized attacks)",
        )
    )
    assert_strategy_shapes(result, variants)
