"""Shared configuration for the figure-reproduction benchmarks.

Each benchmark regenerates one paper figure: it runs the experiment once
(``benchmark.pedantic(rounds=1)``), prints the figure's rows (run pytest
with ``-s`` to see them), and asserts the paper's *shape* claims — who
wins, by roughly what factor, where crossovers fall.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable
(default 0.08 = flow counts and link capacity at 8 % of the paper's,
preserving per-flow fair shares).  Set it to 1.0 for full paper scale
(much slower).  ``REPRO_BENCH_SECONDS`` scales the measurement window.

Every benchmark session also writes ``BENCH_telemetry.json`` at the repo
root: per-figure wall-clock seconds plus a per-subsystem tick-profiler
breakdown of one profiled smoke scenario, so successive commits have a
performance trajectory to compare against.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict

import pytest

from repro.experiments.common import FunctionalSettings


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.08"))


def bench_seconds() -> float:
    return float(os.environ.get("REPRO_BENCH_SECONDS", "8.0"))


@pytest.fixture
def settings() -> FunctionalSettings:
    return FunctionalSettings(
        scale=bench_scale(),
        warmup_seconds=4.0,
        measure_seconds=bench_seconds(),
        seed=1,
    )


def emit(text: str) -> None:
    """Print a figure's rows beneath the benchmark output."""
    print()
    print(text)


# ----------------------------------------------------------------------
# BENCH_telemetry.json: the performance trajectory
# ----------------------------------------------------------------------
_BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_telemetry.json",
)

_figure_seconds: Dict[str, float] = {}


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    start = time.perf_counter()
    yield
    _figure_seconds[item.nodeid] = time.perf_counter() - start  # flocheck: disable=FLC007 -- pytest timing hook runs in the host process only; nothing ships it to a spawn worker


def _profiled_smoke() -> Dict[str, object]:
    """Per-subsystem wall-time breakdown of one profiled FLoc run.

    A small fixed scenario (independent of the bench scale knobs) so the
    subsystem fractions are comparable across commits even when the
    figure set or scale changes.
    """
    from repro.core.config import FLocConfig
    from repro.core.router import FLocPolicy
    from repro.telemetry import Telemetry, use
    from repro.traffic.scenarios import build_tree_scenario

    tel = Telemetry(mode="metrics", profile=True)
    with use(tel):
        scenario = build_tree_scenario(
            scale_factor=0.05, attack_kind="cbr", attack_rate_mbps=2.0,
            seed=1,
        )
        scenario.attach_policy(FLocPolicy(FLocConfig(s_max=25)))
        scenario.run_seconds(3.0)
    prof = tel.profiler
    return {
        "ticks_profiled": prof.ticks_profiled,
        "total_seconds": round(prof.total_seconds, 6),
        "totals_seconds": {
            name: round(seconds, 6)
            for name, seconds in sorted(prof.totals_seconds.items())
        },
        "fractions": {
            name: round(fraction, 4)
            for name, fraction in sorted(prof.breakdown().items())
        },
    }


def pytest_sessionfinish(session, exitstatus):
    if not _figure_seconds:
        return
    payload = {
        "schema": 1,
        "bench_scale": bench_scale(),
        "bench_seconds": bench_seconds(),
        "figures_wall_seconds": {
            nodeid: round(seconds, 4)
            for nodeid, seconds in sorted(_figure_seconds.items())
        },
        "profiled_smoke": _profiled_smoke(),
    }
    with open(_BENCH_PATH, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
