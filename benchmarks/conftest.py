"""Shared configuration for the figure-reproduction benchmarks.

Each benchmark regenerates one paper figure: it runs the experiment once
(``benchmark.pedantic(rounds=1)``), prints the figure's rows (run pytest
with ``-s`` to see them), and asserts the paper's *shape* claims — who
wins, by roughly what factor, where crossovers fall.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable
(default 0.08 = flow counts and link capacity at 8 % of the paper's,
preserving per-flow fair shares).  Set it to 1.0 for full paper scale
(much slower).  ``REPRO_BENCH_SECONDS`` scales the measurement window.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import FunctionalSettings


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.08"))


def bench_seconds() -> float:
    return float(os.environ.get("REPRO_BENCH_SECONDS", "8.0"))


@pytest.fixture
def settings() -> FunctionalSettings:
    return FunctionalSettings(
        scale=bench_scale(),
        warmup_seconds=4.0,
        measure_seconds=bench_seconds(),
        seed=1,
    )


def emit(text: str) -> None:
    """Print a figure's rows beneath the benchmark output."""
    print()
    print(text)
