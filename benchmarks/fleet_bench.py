#!/usr/bin/env python
"""Fleet speedup benchmark: serial vs ``--workers N`` wall times.

Runs the same two workloads the CI fleet lane exercises — a small
figure sweep (fig03 + fig04) and a seed-pinned chaos sweep — once
serially and once on the multiprocess fleet, verifies the results are
identical (the fleet's whole contract), and records wall times in
``BENCH_fleet.json``.

The recorded ``cores`` field matters for reading the numbers: on a
single-core box the fleet *cannot* be faster than serial — it pays
spawn + checkpoint overhead for no parallelism — and the JSON says so
honestly.  CI runners and developer machines with 2+ cores are where
the speedup is realized.

Usage::

    PYTHONPATH=src python benchmarks/fleet_bench.py [--workers N] [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import shutil
import sys
import tempfile
import time

from repro.chaos.engine import ChaosOptions, run_chaos
from repro.experiments.common import FunctionalSettings
from repro.fleet import FleetOptions, chaos_tasks, figure_tasks, run_fleet
from repro.runner import CheckpointStore, SupervisedRunner
from repro.runner.figures import build_figure_job

FIGURES = ("fig03", "fig04")


def _settings() -> FunctionalSettings:
    return FunctionalSettings(
        scale=0.05, warmup_seconds=1.0, measure_seconds=2.0, seed=7
    )


def _chaos_options() -> ChaosOptions:
    return ChaosOptions(
        seed=2024, campaigns=3, simulator="both", shrink=False,
        artifact_dir=None,
    )


def _fresh_store(scratch: str, label: str) -> CheckpointStore:
    path = os.path.join(scratch, label)
    shutil.rmtree(path, ignore_errors=True)
    return CheckpointStore(path)


def bench_figures(workers: int, scratch: str) -> dict:
    settings = _settings()
    jobs = {fig: build_figure_job(fig, settings) for fig in FIGURES}

    start = time.perf_counter()
    serial = {}
    for fig in FIGURES:
        report = SupervisedRunner().run_units(jobs[fig].units)
        serial.update(report.results)
    serial_seconds = time.perf_counter() - start

    tasks = [t for fig in FIGURES for t in figure_tasks(fig, settings)]
    start = time.perf_counter()
    fleet = run_fleet(
        tasks,
        _fresh_store(scratch, "figures"),
        FleetOptions(workers=workers),
    )
    fleet_seconds = time.perf_counter() - start

    if fleet.status != "ok":
        raise SystemExit(f"figure fleet ended {fleet.status}, not ok")
    for name, value in serial.items():
        if pickle.dumps(fleet.results[name]) != pickle.dumps(value):
            raise SystemExit(f"figure fleet diverged from serial on {name}")

    return {
        "units": len(tasks),
        "serial_seconds": round(serial_seconds, 4),
        "fleet_seconds": round(fleet_seconds, 4),
        "speedup": round(serial_seconds / fleet_seconds, 3),
        "results_identical": True,
    }


def bench_chaos(workers: int, scratch: str) -> dict:
    start = time.perf_counter()
    serial = run_chaos(_chaos_options())
    serial_seconds = time.perf_counter() - start
    if serial.job.status != "ok":
        raise SystemExit(f"serial chaos sweep ended {serial.job.status}")

    tasks = chaos_tasks(_chaos_options())
    start = time.perf_counter()
    fleet = run_fleet(
        tasks,
        _fresh_store(scratch, "chaos"),
        FleetOptions(workers=workers),
    )
    fleet_seconds = time.perf_counter() - start

    if fleet.status != "ok":
        raise SystemExit(f"chaos fleet ended {fleet.status}, not ok")
    serial_digests = {
        name: serial.job.results[name]["digest"]
        for name in serial.job.results
    }
    fleet_digests = {
        name: fleet.results[name]["digest"] for name in fleet.results
    }
    if serial_digests != fleet_digests:
        raise SystemExit("chaos fleet digests diverged from serial")

    return {
        "campaigns": len(tasks),
        "serial_seconds": round(serial_seconds, 4),
        "fleet_seconds": round(fleet_seconds, 4),
        "speedup": round(serial_seconds / fleet_seconds, 3),
        "digests_identical": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers", type=int, default=None,
        help="fleet size (default: min(4, cpu count))",
    )
    parser.add_argument(
        "--out", default="BENCH_fleet.json", help="output JSON path"
    )
    args = parser.parse_args(argv)

    cores = os.cpu_count() or 1
    workers = args.workers if args.workers is not None else min(4, max(2, cores))
    scratch = tempfile.mkdtemp(prefix="fleet-bench-")
    try:
        print(f"cores={cores} workers={workers}", file=sys.stderr)
        print("benchmarking figure sweep (fig03+fig04)...", file=sys.stderr)
        figures = bench_figures(workers, scratch)
        print("benchmarking chaos sweep (3 campaigns, both sims)...",
              file=sys.stderr)
        chaos = bench_chaos(workers, scratch)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    payload = {
        "schema": 1,
        "cores": cores,
        "workers": workers,
        "note": (
            "fleet pays spawn + checkpoint overhead; speedup < 1 is "
            "expected when cores == 1 and on CI only when cores >= 2"
        ),
        "figures": figures,
        "chaos": chaos,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
