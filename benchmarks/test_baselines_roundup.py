"""Roundup bench: every implemented defense against the same CBR flood.

Not a paper figure per se — this is the "who should I deploy" table a
release needs, covering the two related-work baselines the paper only
discusses (CDF-PSP) alongside the evaluated ones.
"""

from conftest import emit

from repro.analysis.fairness import jain_index
from repro.analysis.report import format_table
from repro.experiments.common import run_breakdown
from repro.traffic.scenarios import build_tree_scenario

SCHEMES = ("floc", "pushback", "redpd", "cdfpsp", "fairshare", "red",
           "droptail")


def test_baselines_roundup(benchmark, settings):
    def run():
        out = {}
        for scheme in SCHEMES:
            scenario = build_tree_scenario(
                scale_factor=settings.scale,
                attack_kind="cbr",
                attack_rate_mbps=2.0,
                seed=settings.seed,
                start_spread_seconds=0.5,
                # the flood starts after CDF-PSP's training window, so the
                # history-based baseline is tested on its own terms —
                # identical timing for every scheme
                attack_start_seconds=3.5,
            )
            out[scheme] = run_breakdown(scenario, scheme, settings)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for scheme, result in results.items():
        b = result.breakdown
        rows.append(
            [
                scheme,
                b.legit_in_legit,
                b.legit_in_attack,
                b.attack,
                jain_index(result.legit_in_legit_rates),
            ]
        )
    emit(
        format_table(
            ["scheme", "legit-legit", "legit-attack", "attack",
             "legit Jain index"],
            rows,
            title="ROUNDUP: all defenses vs the same 2.0 Mbps/bot CBR flood",
        )
    )

    legit_total = {s: r.breakdown.legit_total for s, r in results.items()}
    # FLoc wins; the aggregate/per-flow/history baselines sit in between;
    # no defense loses
    assert legit_total["floc"] == max(legit_total.values())
    assert legit_total["droptail"] <= min(
        legit_total["floc"], legit_total["pushback"], legit_total["cdfpsp"]
    )
    # CDF-PSP's history isolation does protect conformant traffic against
    # a flood that post-dates its training
    assert legit_total["cdfpsp"] > legit_total["droptail"] + 0.1
    # fairness among legitimate-path flows stays reasonable under FLoc
    assert jain_index(results["floc"].legit_in_legit_rates) > 0.6
