"""Ablation: exact per-flow drop tracking vs the scalable Bloom filter.

Section V-B's claim: the approximate drop-record filter (with
probabilistic updates) defends nearly as well as exact tracking while
touching memory far less often — the property that lets FLoc run on
backbone routers.
"""

from conftest import emit

from repro.analysis.report import format_table
from repro.core.config import FLocConfig
from repro.core.dropfilter import DropRecordFilter
from repro.experiments.common import run_breakdown
from repro.traffic.scenarios import build_tree_scenario


def test_ablation_drop_filter(benchmark, settings):
    def run():
        out = {}
        for label, use_filter in (("exact", False), ("bloom", True)):
            scenario = build_tree_scenario(
                scale_factor=settings.scale,
                attack_kind="cbr",
                attack_rate_mbps=2.0,
                seed=settings.seed,
            )
            cfg = FLocConfig(use_drop_filter=use_filter)
            out[label] = run_breakdown(scenario, "floc", settings, cfg)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for label, result in results.items():
        b = result.breakdown
        policy = result.extra["policy"]
        if policy.drop_filter is not None:
            updates = policy.drop_filter.memory_updates
            drops = policy.drop_filter.drops_seen
        else:
            updates = sum(policy.drop_stats.values())
            drops = updates
        rows.append([label, b.legit_total, b.attack, drops, updates])
    emit(
        format_table(
            ["tracker", "legit total", "attack", "drops seen",
             "memory updates"],
            rows,
            title="ABLATION: exact tracker vs Bloom drop filter",
        )
    )

    exact = results["exact"].breakdown
    bloom = results["bloom"].breakdown
    # the approximate filter keeps most of the defense (the paper trades
    # a little precision for O(1) memory per drop at backbone speed)
    assert bloom.legit_total > 0.7 * exact.legit_total
    # probabilistic updates write memory less often than drops occur
    policy = results["bloom"].extra["policy"]
    assert (
        policy.drop_filter.memory_updates
        < policy.drop_filter.drops_seen * policy.drop_filter.m
    )


def test_filter_false_positive_budget(benchmark):
    """The paper's dimensioning numbers for the drop filter."""

    def compute():
        return {
            "fp_0.5M": DropRecordFilter.false_positive_ratio(0.5e6, 4, 24),
            "fp_4M_with_selection": DropRecordFilter.false_positive_with_selection(
                4e6, 3.5e6, k=1, m=4, bits=24
            ),
            "memory_mb": DropRecordFilter(m=4, bits=24).memory_bytes / 2**20,
        }

    numbers = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        format_table(
            ["quantity", "value"],
            [[k, f"{v:.3g}"] for k, v in numbers.items()],
            title="ABLATION: filter dimensioning (paper Section V-B.5)",
        )
    )
    # paper: 0.5M flows -> 7.4e-7; 4M attack flows with array selection
    # stays ~1e-5; four 2^24-entry arrays cost ~128-ish MB
    assert numbers["fp_0.5M"] < 1e-6
    assert numbers["fp_4M_with_selection"] < 1e-4
    assert 100 < numbers["memory_mb"] < 400
