"""FIG-2 bench: packet service rate vs drop rate at a congested link."""

from conftest import emit

from repro.analysis.report import format_table
from repro.experiments.fig02 import run_fig02


def test_fig02_service_vs_drop(benchmark, settings):
    result = benchmark.pedantic(
        lambda: run_fig02(settings), rounds=1, iterations=1
    )
    emit(
        format_table(
            ["second", "service pkt/s", "drop pkt/s"],
            result.rows,
            title="FIG-2: service vs drop rate (normal operation)",
        )
    )
    emit(f"service/drop ratio: {result.service_to_drop_ratio:.1f}")

    # paper shape: the link is busy and drops are orders of magnitude
    # rarer than services — the premise of drop-side accounting
    assert result.service_total > 0
    assert result.service_to_drop_ratio > 20.0
    # drops occur (the link is actually congested)
    assert result.drop_total > 0
