"""FIG-7 bench: robustness CDFs across schemes and attack strengths."""

from conftest import emit

from repro.analysis.cdf import percentile
from repro.analysis.report import format_table
from repro.experiments.common import mean
from repro.experiments.fig07 import run_fig07


def test_fig07_robustness(benchmark, settings):
    result = benchmark.pedantic(
        lambda: run_fig07(
            settings,
            schemes=("floc", "pushback", "redpd"),
            attack_rates_mbps=(0.5, 2.0, 4.0),
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        format_table(
            ["scheme", "bot Mbps", "mean", "p10", "p50", "p90"],
            result.summary_rows(),
            title="FIG-7: legit-path per-flow bandwidth (Mbps)",
        )
    )
    emit(f"ideal fair per-flow rate: {result.ideal_flow_mbps:.3f} Mbps")

    def series(scheme):
        return {
            rate: result.samples[(scheme, rate)]
            for (s, rate) in result.samples
            if s == scheme
        }

    floc = series("floc")
    # paper shape 1: FLoc's distributions are nearly invariant in attack
    # strength and centred near the ideal fair rate
    floc_means = [mean(v) for v in floc.values()]
    assert min(floc_means) > 0.6 * result.ideal_flow_mbps
    # paper shape 2: at the strongest attack FLoc beats both baselines on
    # what legitimate-path flows receive
    strongest = 4.0
    floc_p50 = percentile(result.samples[("floc", strongest)], 0.5)
    for other in ("pushback", "redpd"):
        other_p50 = percentile(result.samples[(other, strongest)], 0.5)
        assert floc_p50 >= other_p50 * 0.95
    # paper shape 3: the no-attack RED reference bounds everything (it has
    # the whole link to itself)
    red = result.samples[("red-noattack", 0.0)]
    assert mean(red) >= max(floc_means) * 0.8
