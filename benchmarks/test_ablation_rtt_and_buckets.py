"""Ablations: RTT under-estimation (Section V-A) and bucket sizing (IV-A).

* RTT correction: FLoc deliberately halves measured path RTTs because
  bucket parameters grow *quadratically* in RTT — an over-estimate
  inflates buckets, over-admits, and floods the queue; an under-estimate
  only costs some unnecessary (and compensated) drops.
* Bucket sizing: the base bucket N starves partially-synchronised flows;
  N' = (1 + 2/(3 sqrt n)) N absorbs their stochastic bursts; the 4/3 N
  worst-case bucket covers full synchronisation.
"""

from conftest import emit

from repro.analysis.report import format_table
from repro.core.config import FLocConfig
from repro.experiments.common import run_breakdown
from repro.experiments.fig04 import aggregate_request_series, token_utilization
from repro.tcp import model
from repro.traffic.scenarios import build_tree_scenario


def test_ablation_rtt_correction(benchmark, settings):
    def run():
        out = {}
        for corr in (0.5, 1.0, 2.0):
            scenario = build_tree_scenario(
                scale_factor=settings.scale,
                attack_kind="cbr",
                attack_rate_mbps=2.0,
                seed=settings.seed,
            )
            cfg = FLocConfig(rtt_correction=corr)
            out[corr] = run_breakdown(scenario, "floc", settings, cfg)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for corr, result in sorted(results.items()):
        b = result.breakdown
        overflow = result.extra["policy"].drop_stats["overflow"]
        rows.append([corr, b.legit_total, b.attack, b.utilization, overflow])
    emit(
        format_table(
            ["RTT multiplier", "legit total", "attack", "util",
             "overflow drops"],
            rows,
            title="ABLATION: RTT estimate correction (paper halves RTTs)",
        )
    )

    # the paper's halving keeps the defense at least as strong as using
    # raw RTTs, and inflating RTTs (2.0) must not improve the defense
    assert results[0.5].breakdown.legit_total >= results[2.0].breakdown.legit_total - 0.05


def test_ablation_bucket_sizing(benchmark):
    def compute():
        n, bw, rtt, steps = 30, 15.0, 12.0, 600
        peak = model.peak_window(bw, rtt, n)
        period = max(2, int(round(peak / 2.0 * rtt)))
        partial = aggregate_request_series(n, peak, period, "partial", steps)
        mean_req = n * model.mean_window(peak)
        demand = sum(partial)
        ratio = model.increased_bucket_size(bw, rtt, n) / model.bucket_size(
            bw, rtt, n
        )

        def served_fraction(bucket):
            # fraction of the flows' aggregate demand the bucket admits
            return sum(min(x, bucket) for x in partial) / demand

        return {
            "N (base)": served_fraction(mean_req),
            "N' (increased)": served_fraction(mean_req * ratio),
            "4/3 N (sync worst case)": served_fraction(mean_req * 4.0 / 3.0),
        }

    served = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        format_table(
            ["bucket", "demand served (partial sync)"],
            [[k, v] for k, v in served.items()],
            title="ABLATION: bucket sizing under partially-synchronised flows",
        )
    )
    # the base bucket clips the stochastic bursts; the increased bucket
    # absorbs them (the design point of Eq. IV.3)
    assert served["N' (increased)"] > served["N (base)"]
    # and the worst-case 4/3 bucket covers even more of the demand
    assert served["4/3 N (sync worst case)"] >= served["N' (increased)"] - 1e-9


def test_ablation_smax_sweep(benchmark, settings):
    """|S|max controls the guarantee/collateral trade-off (Sec. IV-C)."""

    def run():
        out = {}
        for s_max in (None, 25, 15):
            scenario = build_tree_scenario(
                scale_factor=settings.scale,
                attack_kind="cbr",
                attack_rate_mbps=2.0,
                seed=settings.seed,
            )
            cfg = FLocConfig(s_max=s_max)
            out[s_max] = run_breakdown(scenario, "floc", settings, cfg)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for s_max, result in results.items():
        b = result.breakdown
        groups = result.extra["policy"].plan.n_groups
        rows.append(
            [str(s_max), groups, b.legit_in_legit, b.legit_in_attack, b.attack]
        )
    emit(
        format_table(
            ["|S|max", "identifiers", "legit-legit", "legit-attack", "attack"],
            rows,
            title="ABLATION: attack-path aggregation level",
        )
    )

    # aggregation respects the identifier budget
    assert results[25].extra["policy"].plan.n_groups <= 25
    assert results[15].extra["policy"].plan.n_groups <= 15
    # and the legitimate-path guarantee never degrades as |S|max tightens
    assert (
        results[15].breakdown.legit_in_legit
        >= results[None].breakdown.legit_in_legit - 0.08
    )
