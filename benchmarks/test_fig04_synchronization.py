"""FIG-4 bench: TCP window synchronisation and token consumption."""

from conftest import emit

from repro.analysis.report import format_table
from repro.experiments.fig04 import run_fig04


def test_fig04_synchronization(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig04(n_flows=30, bandwidth=15.0, rtt=12.0),
        rounds=1,
        iterations=1,
    )
    emit(
        format_table(
            ["case", "bucket (tokens)", "token utilization"],
            [
                ["unsynchronized", result.base_bucket, result.utilization_unsync],
                ["synchronized(4/3N)", result.sync_bucket, result.utilization_sync],
                ["partial (N')", result.increased_bucket,
                 result.utilization_partial],
            ],
            title="FIG-4: token consumption by synchronisation case",
        )
    )

    # paper shapes:
    # unsynchronised flows consume nearly all tokens of the base bucket
    assert result.utilization_unsync > 0.97
    # fully synchronised flows consume ~3/4 of the peak-sized bucket
    assert abs(result.utilization_sync - 0.75) < 0.08
    # partially synchronised flows sit in between, near full consumption
    assert result.utilization_partial > result.utilization_sync
    # the aggregate request of synchronised flows swings 2:1 peak/trough
    assert max(result.series_sync) / min(result.series_sync) > 1.8
    # unsynchronised aggregate is nearly flat
    assert max(result.series_unsync) / min(result.series_unsync) < 1.1
