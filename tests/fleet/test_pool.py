"""The fleet supervisor: determinism, salvage, retry, quarantine.

These tests spawn real worker processes (the whole point of the fleet),
so they use the cheapest figures and tiny campaign counts.  Task classes
live at module level: spawn workers import this module by name to
unpickle them.
"""

import os
import pickle
import signal
from dataclasses import dataclass

import pytest

from repro.errors import ConfigError
from repro.experiments.common import FunctionalSettings
from repro.fleet import (
    FleetOptions,
    figure_tasks,
    merge_telemetry,
    run_fleet,
)
from repro.runner import CheckpointStore, RetryPolicy, SupervisedRunner
from repro.runner.figures import build_figure_job
from repro.telemetry import Telemetry, use
from repro.telemetry.exporters import render_prometheus


def settings():
    return FunctionalSettings(
        scale=0.05, warmup_seconds=0.5, measure_seconds=1.0, seed=3
    )


@dataclass(frozen=True)
class PoisonTask:
    """Kills every worker that touches it."""

    label: str = "poison"

    @property
    def name(self) -> str:
        return self.label

    def run(self, ctx):
        os.kill(os.getpid(), signal.SIGKILL)


@dataclass(frozen=True)
class FlakyTask:
    """Fails on the first attempt, succeeds once its marker exists."""

    marker: str
    label: str = "flaky"

    @property
    def name(self) -> str:
        return self.label

    def run(self, ctx):
        if not os.path.exists(self.marker):
            with open(self.marker, "w", encoding="utf-8") as fh:
                fh.write("attempted\n")
            raise ValueError("transient failure (first attempt)")
        return "recovered"


class TestOptions:
    def test_zero_workers_rejected(self):
        with pytest.raises(ConfigError):
            FleetOptions(workers=0).validate()

    def test_heartbeat_timeout_must_exceed_interval(self):
        with pytest.raises(ConfigError):
            FleetOptions(
                heartbeat_interval_seconds=1.0, heartbeat_timeout_seconds=0.5
            ).validate()

    def test_duplicate_task_names_rejected(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "store"))
        tasks = [PoisonTask(), PoisonTask()]
        with pytest.raises(ConfigError):
            run_fleet(tasks, store)


class TestDeterminism:
    def test_fleet_matches_serial_results_and_telemetry(self, tmp_path):
        figures = ["fig03", "fig04"]
        jobs = {f: build_figure_job(f, settings()) for f in figures}

        serial_tel = Telemetry(mode="metrics")
        serial_results = {}
        with use(serial_tel):
            for fig in figures:
                report = SupervisedRunner().run_units(jobs[fig].units)
                assert report.ok
                serial_results.update(report.results)

        tasks = [t for f in figures for t in figure_tasks(f, settings())]
        fleet = run_fleet(
            tasks,
            CheckpointStore(str(tmp_path / "store")),
            FleetOptions(workers=2, telemetry_mode="metrics"),
        )
        assert fleet.status == "ok"
        assert [o.status for o in fleet.outcomes] == ["done"] * len(tasks)
        assert set(fleet.results) == set(serial_results)
        for name in serial_results:
            assert pickle.dumps(fleet.results[name]) == pickle.dumps(
                serial_results[name]
            ), f"{name} diverged from serial"
        assert render_prometheus(fleet.telemetry.registry) == render_prometheus(
            serial_tel.registry
        )
        assert (
            fleet.telemetry.registry.snapshot() == serial_tel.registry.snapshot()
        )

    def test_completed_store_resumes_without_spawning(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "store"))
        tasks = figure_tasks("fig03", settings())
        first = run_fleet(tasks, store, FleetOptions(workers=1))
        assert first.status == "ok"
        assert first.workers_spawned >= 1

        second = run_fleet(tasks, store, FleetOptions(workers=1))
        assert second.status == "ok"
        assert second.workers_spawned == 0  # pre-salvage found everything
        assert [o.status for o in second.outcomes] == ["resumed"] * len(tasks)
        for name in first.results:
            assert pickle.dumps(second.results[name]) == pickle.dumps(
                first.results[name]
            )


class TestFaultTolerance:
    def test_transient_failure_retries_on_fresh_worker(self, tmp_path):
        task = FlakyTask(marker=str(tmp_path / "marker"))
        fleet = run_fleet(
            [task],
            CheckpointStore(str(tmp_path / "store")),
            FleetOptions(workers=1, retry=RetryPolicy(max_retries=2, seed=0)),
        )
        assert fleet.status == "ok"
        outcome = fleet.outcomes[0]
        assert outcome.status == "done"
        assert outcome.attempts == 2
        assert fleet.results[task.name] == "recovered"

    def test_poison_task_is_quarantined_with_reproducer(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "store"))
        fleet = run_fleet(
            [PoisonTask()],
            store,
            FleetOptions(workers=1, max_worker_deaths=2),
        )
        assert fleet.status == "quarantined"
        assert fleet.quarantined == ["poison"]
        outcome = fleet.outcomes[0]
        assert outcome.status == "quarantined"
        assert outcome.worker_deaths == 2
        # the poison job burned through distinct replacement workers
        assert fleet.workers_spawned >= 2
        assert "reproducer" in (outcome.error or "")
        quarantine_dir = os.path.join(store.root, "fleet", "quarantine")
        files = os.listdir(quarantine_dir)
        assert files, "no reproducer artifact written"

    def test_healthy_tasks_survive_a_poison_neighbour(self, tmp_path):
        tasks = [PoisonTask()] + figure_tasks("fig03", settings())
        fleet = run_fleet(
            tasks,
            CheckpointStore(str(tmp_path / "store")),
            FleetOptions(workers=2, max_worker_deaths=2),
        )
        assert fleet.status == "quarantined"
        by_name = {o.name: o for o in fleet.outcomes}
        assert by_name["poison"].status == "quarantined"
        assert by_name["fig03"].status == "done"
        assert "fig03" in fleet.results


class TestMergeExport:
    def test_merge_telemetry_reexported_from_package(self):
        # the CLI and CI lane import the reduction via the package root
        assert merge_telemetry([]).enabled is False
