"""Task recipes: picklable, canonical, and equal to the serial units."""

import pickle

import pytest

from repro.chaos.engine import ChaosOptions, build_chaos_units
from repro.chaos.spec import CampaignSpec
from repro.errors import ConfigError
from repro.experiments.common import FunctionalSettings
from repro.fleet.jobs import chaos_tasks, figure_tasks
from repro.runner.figures import build_figure_job
from repro.runner.supervisor import UnitContext


def settings():
    return FunctionalSettings(
        scale=0.05, warmup_seconds=0.5, measure_seconds=1.0, seed=3
    )


class TestFigureTasks:
    def test_canonical_order_matches_serial_units(self):
        job = build_figure_job("fig06", settings())
        tasks = figure_tasks("fig06", settings())
        assert [t.name for t in tasks] == [name for name, _ in job.units]

    def test_tasks_pickle_roundtrip(self):
        for task in figure_tasks("fig04", settings()):
            clone = pickle.loads(pickle.dumps(task))
            assert clone == task  # frozen dataclass: field equality

    def test_rebuilt_unit_equals_serial_result(self):
        task = figure_tasks("fig03", settings())[0]
        job = build_figure_job("fig03", settings())
        serial = dict(job.units)[task.name](UnitContext(name=task.name))
        fleet = task.run(UnitContext(name=task.name))
        assert fleet.mode_fractions == serial.mode_fractions

    def test_unknown_unit_raises(self):
        task = figure_tasks("fig03", settings())[0]
        bad = type(task)(
            figure=task.figure,
            unit="no-such-unit",
            settings=task.settings,
            variants=task.variants,
        )
        with pytest.raises(ConfigError):
            bad.run(UnitContext(name="no-such-unit"))


class TestChaosTasks:
    def options(self):
        return ChaosOptions(
            seed=5, campaigns=2, simulator="fluid", shrink=False,
            artifact_dir=None,
        )

    def test_names_and_specs_match_serial_sweep(self):
        units = build_chaos_units(self.options())
        tasks = chaos_tasks(self.options())
        assert [t.name for t in tasks] == [name for name, _ in units]
        for task, (_, unit) in zip(tasks, units):
            assert CampaignSpec.from_dict(task.spec) == unit.spec

    def test_tasks_pickle(self):
        for task in chaos_tasks(self.options()):
            assert pickle.loads(pickle.dumps(task)) == task

    def test_invalid_options_rejected(self):
        with pytest.raises(ConfigError):
            chaos_tasks(ChaosOptions(campaigns=0))
