"""The fleet's telemetry reduction equals one serially-shared telemetry."""

import pytest

from repro.errors import ConfigError
from repro.fleet.merge import merge_registries, merge_telemetry
from repro.telemetry import NullTelemetry, Telemetry
from repro.telemetry.registry import MetricsRegistry, TickSeries


def regs(n=2):
    return [MetricsRegistry() for _ in range(n)]


class TestScalars:
    def test_counters_sum(self):
        a, b = regs()
        a.counter("n_count").inc(3)
        b.counter("n_count").inc(4)
        out = merge_registries(MetricsRegistry(), [a, b])
        assert out.get("n_count").value == 7

    def test_gauges_last_write_wins(self):
        a, b = regs()
        a.gauge("g_ratio").set(1.0)
        b.gauge("g_ratio").set(2.0)
        out = merge_registries(MetricsRegistry(), [a, b])
        assert out.get("g_ratio").value == 2.0

    def test_untouched_gauge_leaves_running_value(self):
        # a later piece that never set the gauge must not reset it,
        # exactly like a serial unit that never touched it
        a, b = regs()
        a.gauge("g_ratio").set(5.0)
        b.counter("other_count").inc()
        out = merge_registries(MetricsRegistry(), [a, b])
        assert out.get("g_ratio").value == 5.0


class TestLabeled:
    def test_labeled_counters_sum_per_label(self):
        a, b = regs()
        a.labeled("c_count").inc("x", 2)
        b.labeled("c_count").inc("x", 3)
        b.labeled("c_count").inc("y", 1)
        out = merge_registries(MetricsRegistry(), [a, b])
        assert dict(out.get("c_count")) == {"x": 5, "y": 1}

    def test_labeled_gauges_overwrite_per_label(self):
        # engine scrapes are absolute totals; a resumed shard's scrape
        # must replace the previous one, never add to it
        a, b = regs()
        a.labeled_gauge("s_packets").set("x", 10)
        b.labeled_gauge("s_packets").set("x", 25)
        b.labeled_gauge("s_packets").set("y", 7)
        out = merge_registries(MetricsRegistry(), [a, b])
        assert dict(out.get("s_packets")) == {"x": 25, "y": 7}
        assert out.get("s_packets").kind == "labeled_gauge"

    def test_label_order_is_first_seen_in_canonical_order(self):
        # metrics.json preserves insertion order, so merged order must
        # equal the serial first-seen order
        a, b = regs()
        a.labeled("c_count").inc("zeta")
        b.labeled("c_count").inc("alpha")
        b.labeled("c_count").inc("zeta")
        out = merge_registries(MetricsRegistry(), [a, b])
        assert list(out.get("c_count")) == ["zeta", "alpha"]


class TestSeries:
    def serial(self, observations):
        series = TickSeries()
        for tick, amount in observations:
            series.observe(tick, amount)
        return series

    def test_pending_point_spans_pieces(self):
        # piece 1 ends with tick 2 pending; piece 2 opens at tick 2 —
        # serial would have accumulated both into one group
        a, b = regs()
        for tick, amount in [(1, 1), (1, 1), (2, 1)]:
            a.tick_series("t_count").observe(tick, amount)
        for tick, amount in [(2, 2), (3, 1)]:
            b.tick_series("t_count").observe(tick, amount)
        out = merge_registries(MetricsRegistry(), [a, b])
        serial = self.serial([(1, 1), (1, 1), (2, 1), (2, 2), (3, 1)])
        merged = out.get("t_count")
        assert list(merged) == list(serial)
        assert merged.pending_tick == serial.pending_tick
        assert merged.pending_value == serial.pending_value

    def test_flushed_piece_flushes_merge(self):
        a, b = regs()
        a.tick_series("t_count").observe(1, 4)
        b.tick_series("t_count").observe(2, 5)
        b.tick_series("t_count").flush()
        out = merge_registries(MetricsRegistry(), [a, b])
        serial = self.serial([(1, 4), (2, 5)])
        serial.flush()
        assert list(out.get("t_count")) == list(serial)
        assert out.get("t_count").pending_tick == -1

    def test_empty_piece_does_not_flush_anothers_pending(self):
        a, b = regs()
        a.tick_series("t_count").observe(3, 1)
        b.tick_series("t_count")  # created, never observed
        out = merge_registries(MetricsRegistry(), [a, b])
        assert out.get("t_count").pending_tick == 3

    def test_ring_series_replay(self):
        a, b = regs()
        for tick in range(4):
            a.series("r_ratio", capacity=8).sample(tick, float(tick))
        for tick in range(4, 10):
            b.series("r_ratio", capacity=8).sample(tick, float(tick))
        out = merge_registries(MetricsRegistry(), [a, b])
        serial = [(t, float(t)) for t in range(10)][-8:]
        assert out.get("r_ratio").points() == serial

    def test_ring_capacity_mismatch_raises(self):
        a, b = regs()
        a.series("r_ratio", capacity=8).sample(0, 0.0)
        b.series("r_ratio", capacity=16).sample(1, 1.0)
        with pytest.raises(ConfigError):
            merge_registries(MetricsRegistry(), [a, b])


class TestHistogramsAndBins:
    def test_histograms_add(self):
        a, b = regs()
        for v in (0.1, 0.9):
            a.histogram("h_ticks", bounds=[0.5, 1.0]).observe(v)
        b.histogram("h_ticks", bounds=[0.5, 1.0]).observe(0.2)
        out = merge_registries(MetricsRegistry(), [a, b])
        h = out.get("h_ticks")
        assert h.total == 3
        assert h.sum == pytest.approx(1.2)

    def test_histogram_bounds_mismatch_raises(self):
        a, b = regs()
        a.histogram("h_ticks", bounds=[0.5]).observe(0.1)
        b.histogram("h_ticks", bounds=[0.7]).observe(0.1)
        with pytest.raises(ConfigError):
            merge_registries(MetricsRegistry(), [a, b])

    def test_binned_counters_add_nested(self):
        a, b = regs()
        a.binned("b_count").observe("cat", 0, 2)
        b.binned("b_count").observe("cat", 0, 1)
        b.binned("b_count").observe("cat", 3, 4)
        out = merge_registries(MetricsRegistry(), [a, b])
        assert dict(out.get("b_count")["cat"]) == {0: 3, 3: 4}

    def test_kind_mismatch_raises(self):
        a, b = regs()
        a.counter("m_count").inc()
        b.gauge("m_count").set(1.0)
        with pytest.raises(ConfigError):
            merge_registries(MetricsRegistry(), [a, b])


class TestTelemetry:
    def test_disabled_pieces_reduce_to_null(self):
        merged = merge_telemetry([NullTelemetry(), NullTelemetry()])
        assert not merged.enabled
        assert isinstance(merged, NullTelemetry)

    def test_mode_mismatch_raises(self):
        with pytest.raises(ConfigError):
            merge_telemetry([Telemetry(mode="metrics"), Telemetry(mode="trace")])

    def test_trace_events_concatenate_and_totals_sum(self):
        pieces = [Telemetry(mode="trace"), Telemetry(mode="trace")]
        pieces[0].emit_event(1, "drop", "policy", cause="paid")
        pieces[1].emit_event(2, "drop", "policy", cause="fifo")
        pieces[1].emit_event(3, "admit", "policy")
        merged = merge_telemetry(pieces)
        assert merged.trace.emitted_total == 3
        assert merged.trace.counts_by_kind == {"drop": 2, "admit": 1}
        assert [e.tick for e in merged.trace] == [1, 2, 3]

    def test_disabled_pieces_are_skipped_in_mixed_reduction(self):
        enabled = Telemetry(mode="metrics")
        enabled.registry.counter("n_count").inc(2)
        merged = merge_telemetry([NullTelemetry(), enabled])
        assert merged.mode == "metrics"
        assert merged.registry.get("n_count").value == 2
