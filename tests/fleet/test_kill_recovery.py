"""Satellite: SIGKILL a worker mid-campaign; the sweep still matches serial.

The fault plan arms a ``kill_worker`` process fault inside the worker
that picks up the victim campaign: a timer SIGKILLs the worker partway
through the simulation.  The supervisor must convict the dead worker,
salvage the campaign from its tick-level checkpoints, finish it on a
replacement worker, and produce run digests byte-identical to a serial
sweep that never saw a fault.
"""

import pytest

from repro.chaos.engine import ChaosOptions, run_chaos
from repro.errors import ConfigError
from repro.fleet import (
    FleetOptions,
    ProcessFault,
    ProcessFaultPlan,
    chaos_tasks,
    run_fleet,
    sample_process_faults,
)
from repro.runner import CheckpointStore


def options():
    return ChaosOptions(
        seed=11, campaigns=2, simulator="both", shrink=False,
        artifact_dir=None,
    )


def digests(results):
    return {name: results[name]["digest"] for name in sorted(results)}


class TestFaultPlan:
    def test_sample_is_deterministic_and_bounded(self):
        names = [f"campaign-{i:03d}" for i in range(5)]
        a = sample_process_faults(3, names, 2)
        b = sample_process_faults(3, names, 2)
        assert a == b
        assert len(a.faults) == 2
        assert {f.task for f in a.faults} <= set(names)
        assert all(f.kind in ("kill_worker", "stall_worker") for f in a.faults)

    def test_invalid_fault_kind_rejected(self):
        with pytest.raises(ConfigError):
            ProcessFault(task="x", kind="meteor_strike", delay_seconds=0.1)


class TestKillRecovery:
    def test_sigkilled_worker_resumes_elsewhere_digest_identical(self, tmp_path):
        serial = run_chaos(options())
        assert serial.job.status == "ok"

        tasks = chaos_tasks(options())
        victim = tasks[0].name
        plan = ProcessFaultPlan(
            faults=(
                ProcessFault(
                    task=victim, kind="kill_worker", delay_seconds=0.3
                ),
            )
        )
        fleet = run_fleet(
            tasks,
            CheckpointStore(str(tmp_path / "store")),
            FleetOptions(
                workers=2,
                fault_plan=plan,
                heartbeat_timeout_seconds=5.0,
                max_worker_deaths=3,
            ),
        )
        assert fleet.status == "ok"
        by_name = {o.name: o for o in fleet.outcomes}
        # the victim's first worker died: either mid-task (salvaged and
        # finished elsewhere) or inside the report window (result loaded
        # straight from the store)
        assert by_name[victim].worker_deaths >= 1
        assert fleet.workers_spawned > 2, "no replacement worker was spawned"
        assert digests(fleet.results) == digests(serial.job.results)

    def test_stalled_worker_is_convicted_and_digest_identical(self, tmp_path):
        serial = run_chaos(options())
        tasks = chaos_tasks(options())
        victim = tasks[-1].name
        plan = ProcessFaultPlan(
            faults=(
                ProcessFault(
                    task=victim, kind="stall_worker", delay_seconds=0.2
                ),
            )
        )
        fleet = run_fleet(
            tasks,
            CheckpointStore(str(tmp_path / "store")),
            FleetOptions(
                workers=2,
                fault_plan=plan,
                heartbeat_timeout_seconds=2.0,
                max_worker_deaths=3,
            ),
        )
        assert fleet.status == "ok"
        assert fleet.workers_spawned > 2
        assert digests(fleet.results) == digests(serial.job.results)
