"""Shard gangs on the fleet: atomic launch, bit-identity, kill salvage.

All shards of one simulation unit form a gang; the pool must seat the
whole gang at once (a partial launch deadlocks at the first barrier),
keep one telemetry piece per gang, and — when a shard worker is
SIGKILLed mid-run — salvage that shard from its last barrier-epoch
checkpoint onto a replacement worker while the surviving peers wait at
the barrier.  The merged unit result must stay byte-identical to the
serial simulator's throughout.
"""

import pickle

import pytest

from repro.errors import ConfigError
from repro.fleet import (
    FleetOptions,
    ProcessFault,
    ProcessFaultPlan,
    ShardUnitTask,
    run_fleet,
    shard_figure_tasks,
)
from repro.inet.scenarios import build_internet_scenario
from repro.inet.shard import merge_shard_results
from repro.inet.simulator import FluidSimulator
from repro.runner import CheckpointStore

SETTINGS = {
    "n_as": 120,
    "n_legit_sources": 240,
    "n_legit_ases": 30,
    "n_bots": 2_000,
    "target_capacity": 150.0,
    "ticks": 60,
    "warmup": 30,
    "seed": 7,
}


def _tasks(label, strategy, s_max, n_shards, barrier_timeout=90.0):
    return [
        ShardUnitTask(
            figure="fig13",
            unit=f"fig13:f-root:{label}",
            variant="f-root",
            placement="localized",
            label=label,
            strategy=strategy,
            s_max=s_max,
            shard=shard,
            n_shards=n_shards,
            epoch_ticks=20,
            barrier_timeout_seconds=barrier_timeout,
            settings=dict(SETTINGS),
        )
        for shard in range(n_shards)
    ]


def _serial(strategy, s_max=None):
    scenario = build_internet_scenario(
        variant="f-root",
        placement="localized",
        n_as=SETTINGS["n_as"],
        n_legit_sources=SETTINGS["n_legit_sources"],
        n_legit_ases=SETTINGS["n_legit_ases"],
        n_bots=SETTINGS["n_bots"],
        target_capacity=SETTINGS["target_capacity"],
        seed=SETTINGS["seed"],
    )
    sim = FluidSimulator(
        scenario, strategy=strategy, s_max=s_max, seed=SETTINGS["seed"]
    )
    return sim.run(ticks=SETTINGS["ticks"], warmup=SETTINGS["warmup"])


def _merge(fleet, tasks):
    return merge_shard_results([fleet.results[t.name] for t in tasks])


class TestGangValidation:
    def test_gang_larger_than_pool_rejected(self, tmp_path):
        tasks = _tasks("NA", "floc", None, n_shards=3)
        with pytest.raises(ConfigError, match="gang"):
            run_fleet(
                tasks,
                CheckpointStore(str(tmp_path / "store")),
                FleetOptions(workers=2),
            )

    def test_shard_tasks_only_for_internet_figures(self):
        with pytest.raises(ConfigError, match="internet-scale"):
            shard_figure_tasks("fig9", 2)
        with pytest.raises(ConfigError, match="n_shards"):
            shard_figure_tasks("fig13", 0)

    def test_single_shard_task_has_no_gang(self):
        (task,) = _tasks("ND", "nd", None, n_shards=1)
        assert task.gang is None
        assert _tasks("ND", "nd", None, n_shards=2)[0].gang == task.unit


class TestFleetBitIdentity:
    def test_interleaved_gangs_complete_and_match_serial(self, tmp_path):
        """Two 2-shard gangs on a 2-worker pool, interleaved in the task
        list: only an atomic gang launch avoids seating one shard of
        each unit (which would deadlock both at their first barrier)."""
        nd = _tasks("ND", "nd", None, n_shards=2)
        floc = _tasks("NA", "floc", None, n_shards=2)
        interleaved = [nd[0], floc[0], nd[1], floc[1]]
        fleet = run_fleet(
            interleaved,
            CheckpointStore(str(tmp_path / "store")),
            FleetOptions(workers=2),
        )
        assert fleet.status == "ok"
        assert pickle.dumps(_merge(fleet, nd)) == pickle.dumps(_serial("nd"))
        assert pickle.dumps(_merge(fleet, floc)) == pickle.dumps(
            _serial("floc")
        )


class TestShardKillRecovery:
    def test_sigkilled_shard_salvaged_at_barrier_digest_identical(
        self, tmp_path
    ):
        tasks = _tasks("NA", "floc", None, n_shards=2)
        victim = tasks[0].name
        plan = ProcessFaultPlan(
            faults=(
                ProcessFault(
                    task=victim, kind="kill_worker", delay_seconds=0.4
                ),
            )
        )
        fleet = run_fleet(
            tasks,
            CheckpointStore(str(tmp_path / "store")),
            FleetOptions(
                workers=2,
                fault_plan=plan,
                heartbeat_timeout_seconds=5.0,
                max_worker_deaths=3,
            ),
        )
        assert fleet.status == "ok"
        by_name = {o.name: o for o in fleet.outcomes}
        assert by_name[victim].worker_deaths >= 1
        assert fleet.workers_spawned > 2, "no replacement worker was spawned"
        assert pickle.dumps(_merge(fleet, tasks)) == pickle.dumps(
            _serial("floc")
        )
