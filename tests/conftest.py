"""Shared fixtures for the test suite.

Simulation-backed tests run at small scale (a few dozen flows, a few
simulated seconds); the full-figure reproductions live in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.net.engine import Engine
from repro.net.topology import Topology
from repro.traffic.scenarios import build_tree_scenario
from repro.units import UnitScale


@pytest.fixture
def units() -> UnitScale:
    return UnitScale(tick_seconds=0.010)


@pytest.fixture
def dumbbell():
    """A host -> r1 -> r2 -> server dumbbell with a 10 pkt/tick bottleneck.

    Returns (engine, topology).  The bottleneck is r1 -> r2 with a 50
    packet buffer; everything else is unbounded.
    """
    topo = Topology()
    topo.add_duplex_link("h0", "r1", capacity=None)
    topo.add_duplex_link("h1", "r1", capacity=None)
    topo.add_duplex_link("r1", "r2", capacity=10.0, buffer=50)
    topo.add_duplex_link("r2", "srv", capacity=None)
    engine = Engine(topo, seed=42)
    return engine, topo


@pytest.fixture
def small_tree():
    """A scaled-down Section VI tree scenario with CBR attackers."""
    return build_tree_scenario(
        scale_factor=0.05,
        attack_kind="cbr",
        attack_rate_mbps=2.0,
        seed=3,
        start_spread_seconds=0.5,
    )


@pytest.fixture
def no_attack_tree():
    """A scaled-down tree scenario with only legitimate TCP flows."""
    return build_tree_scenario(
        scale_factor=0.05,
        attack_kind="none",
        seed=3,
        start_spread_seconds=0.5,
    )
