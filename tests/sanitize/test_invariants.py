"""Runtime invariant sanitizer: clean runs pass, corruption is caught."""

import pytest

from repro.core.config import FLocConfig
from repro.core.router import FLocPolicy
from repro.errors import ConfigError, InvariantViolation
from repro.faults import (
    CounterCorruption,
    FaultSchedule,
    FluidCounterCorruption,
)
from repro.inet.scenarios import build_internet_scenario
from repro.inet.simulator import FluidSimulator
from repro.sanitize import (
    MODES,
    EngineSanitizer,
    FluidSanitizer,
    install_sanitizer,
)
from repro.traffic.scenarios import build_tree_scenario


def make_scenario(seed=3):
    scenario = build_tree_scenario(
        scale_factor=0.05, attack_kind="cbr", attack_rate_mbps=2.0, seed=seed
    )
    scenario.attach_policy(FLocPolicy(FLocConfig(s_max=25)))
    return scenario


def make_sim(seed=7, **overrides):
    kwargs = dict(
        variant="f-root", n_as=120, n_legit_sources=300, n_legit_ases=30,
        n_bots=2_000, target_capacity=200.0, seed=seed,
    )
    kwargs.update(overrides)
    scenario = build_internet_scenario(**kwargs)
    return FluidSimulator(scenario, strategy="floc", s_max=40, seed=seed)


class TestInstall:
    def test_install_dispatches_on_host_type(self):
        scenario = make_scenario()
        assert isinstance(
            install_sanitizer(scenario.engine, "record"), EngineSanitizer
        )
        assert isinstance(install_sanitizer(make_sim(), "record"), FluidSanitizer)

    def test_off_and_none_install_nothing(self):
        scenario = make_scenario()
        assert install_sanitizer(scenario.engine, None) is None
        assert install_sanitizer(scenario.engine, "off") is None

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigError):
            install_sanitizer(make_scenario().engine, "paranoid")

    def test_modes_constant(self):
        assert MODES == ("strict", "record")


class TestCleanRuns:
    def test_engine_strict_clean_run_passes(self):
        scenario = make_scenario()
        sanitizer = install_sanitizer(scenario.engine, "strict")
        scenario.run_seconds(3.0)
        assert sanitizer.report.ok
        assert sanitizer.report.checks_run > 0

    def test_fluid_strict_clean_run_passes(self):
        sim = make_sim()
        sanitizer = install_sanitizer(sim, "strict")
        sim.run(ticks=120, warmup=40)
        assert sanitizer.report.ok
        assert sanitizer.report.checks_run > 0


class TestCorruptionDetection:
    def test_ledger_corruption_caught_within_one_tick(self):
        scenario = make_scenario()
        faults = FaultSchedule()
        faults.at(40, CounterCorruption("root", "dsthub", target="ledger"),
                  name="skew")
        faults.install(scenario.engine)
        sanitizer = install_sanitizer(scenario.engine, "strict")
        with pytest.raises(InvariantViolation) as err:
            scenario.run_seconds(3.0)
        assert err.value.invariant == "conservation"
        assert err.value.tick <= 41  # detected no later than the next tick

    def test_token_corruption_caught(self):
        scenario = make_scenario()
        faults = FaultSchedule()
        faults.at(60, CounterCorruption("root", "dsthub", target="tokens"),
                  name="negtok")
        faults.install(scenario.engine)
        sanitizer = install_sanitizer(scenario.engine, "strict")
        with pytest.raises(InvariantViolation) as err:
            scenario.run_seconds(3.0)
        assert err.value.invariant == "token-nonnegative"
        assert err.value.tick <= 61

    def test_fluid_rate_corruption_caught(self):
        sim = make_sim()
        faults = FaultSchedule()
        faults.at(60, FluidCounterCorruption(fraction=0.1), name="negrate")
        faults.install(sim)
        sanitizer = install_sanitizer(sim, "strict")
        with pytest.raises(InvariantViolation) as err:
            sim.run(ticks=120, warmup=40)
        assert err.value.invariant == "rate-nonnegative"
        assert err.value.tick <= 61

    def test_record_mode_collects_without_raising(self):
        scenario = make_scenario()
        faults = FaultSchedule()
        faults.at(40, CounterCorruption("root", "dsthub", target="ledger"),
                  name="skew")
        faults.install(scenario.engine)
        sanitizer = install_sanitizer(scenario.engine, "record")
        scenario.run_seconds(3.0)  # does not raise
        assert not sanitizer.report.ok
        assert any(
            v.invariant == "conservation"
            for v in sanitizer.report.violations
        )

    def test_violation_carries_diagnostics(self):
        exc = InvariantViolation("conservation", 42, "off by 7")
        assert exc.invariant == "conservation"
        assert exc.tick == 42
        assert "tick 42" in str(exc) and "conservation" in str(exc)


class TestReport:
    def test_report_rows_and_summary(self):
        scenario = make_scenario()
        sanitizer = install_sanitizer(scenario.engine, "record")
        scenario.run_seconds(1.0)
        assert "0 violation" in sanitizer.report.summary()
        assert sanitizer.report.rows() == []

    def test_check_interval_thins_checks(self):
        s1 = make_scenario(seed=5)
        every = EngineSanitizer(mode="record", check_interval=1)
        every.install(s1.engine)
        s2 = make_scenario(seed=5)
        sparse = EngineSanitizer(mode="record", check_interval=10)
        sparse.install(s2.engine)
        s1.run_seconds(1.0)
        s2.run_seconds(1.0)
        assert sparse.report.checks_run < every.report.checks_run

    def test_bad_interval_rejected(self):
        with pytest.raises(ConfigError):
            EngineSanitizer(mode="strict", check_interval=0)
