"""Command-line interface."""

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for fig in FIGURES:
            assert fig in out

    def test_run_requires_known_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_common_flags_parsed(self):
        args = build_parser().parse_args(
            ["run", "fig08", "--scale", "0.05", "--seconds", "3",
             "--warmup", "1", "--seed", "7"]
        )
        assert args.scale == 0.05
        assert args.seconds == 3.0
        assert args.seed == 7


class TestExecution:
    def test_run_fig03(self, capsys):
        assert main(["run", "fig03"]) == 0
        out = capsys.readouterr().out
        assert "1500" in out and "40" in out

    def test_run_fig04(self, capsys):
        assert main(["run", "fig04"]) == 0
        out = capsys.readouterr().out
        assert "synchronized" in out

    def test_run_fig02_small(self, capsys):
        assert main(
            ["run", "fig02", "--scale", "0.05", "--seconds", "2",
             "--warmup", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "service/drop ratio" in out

    def test_run_fig11(self, capsys):
        assert main(["run", "fig11", "--variants", "f-root"]) == 0
        out = capsys.readouterr().out
        assert "localized" in out and "dispersed" in out

    def test_quickstart_small(self, capsys):
        assert main(
            ["quickstart", "--scale", "0.05", "--seconds", "2",
             "--warmup", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "attack" in out
