"""Command-line interface."""

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for fig in FIGURES:
            assert fig in out

    def test_run_requires_known_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_common_flags_parsed(self):
        args = build_parser().parse_args(
            ["run", "fig08", "--scale", "0.05", "--seconds", "3",
             "--warmup", "1", "--seed", "7"]
        )
        assert args.scale == 0.05
        assert args.seconds == 3.0
        assert args.seed == 7


class TestChaosCommand:
    def test_chaos_flags_parsed(self):
        args = build_parser().parse_args(
            ["chaos", "--seed", "7", "--campaigns", "2", "--simulator",
             "packet", "--floor", "0.5", "--no-shrink",
             "--max-shrink-trials", "9"]
        )
        assert args.seed == 7
        assert args.campaigns == 2
        assert args.simulator == "packet"
        assert args.floor == 0.5
        assert args.no_shrink
        assert args.max_shrink_trials == 9

    def test_invalid_campaign_count_is_a_config_error(self, capsys):
        assert main(["chaos", "--campaigns", "0"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_clean_sweep_exits_zero(self, tmp_path, capsys):
        rc = main(
            ["chaos", "--seed", "2024", "--campaigns", "1", "--simulator",
             "packet", "--artifact-dir", str(tmp_path / "art"),
             "--csv", str(tmp_path / "csv")]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "campaign-000" in out
        assert (tmp_path / "csv" / "chaos.csv").exists()
        assert not (tmp_path / "art").exists()  # no violations, no artifacts

    def test_violation_shrinks_writes_artifact_and_replays(
        self, tmp_path, capsys
    ):
        art = tmp_path / "art"
        rc = main(
            ["chaos", "--seed", "2024", "--campaigns", "1", "--simulator",
             "packet", "--floor", "0.99", "--max-shrink-trials", "2",
             "--artifact-dir", str(art)]
        )
        assert rc == 3
        assert "VIOLATED" in capsys.readouterr().out
        artifacts = sorted(art.glob("reproducer-*.json"))
        assert artifacts
        assert main(["chaos", "--replay", str(artifacts[0])]) == 0
        assert "reproduced" in capsys.readouterr().out


class TestTelemetryFlags:
    def test_run_and_chaos_accept_telemetry(self):
        args = build_parser().parse_args(
            ["run", "fig03", "--telemetry", "trace",
             "--telemetry-dir", "tel"]
        )
        assert args.telemetry == "trace"
        assert args.telemetry_dir == "tel"
        args = build_parser().parse_args(["chaos", "--telemetry", "jsonl"])
        assert args.telemetry == "jsonl"
        assert args.telemetry_dir == "telemetry"

    def test_metrics_subcommand_parsed(self):
        args = build_parser().parse_args(["metrics", "tel", "--profile"])
        assert args.command == "metrics"
        assert args.path == "tel"
        assert args.profile

    def test_chaos_exports_and_metrics_renders(self, tmp_path, capsys):
        tel_dir = tmp_path / "tel"
        rc = main(
            ["chaos", "--seed", "2024", "--campaigns", "1", "--simulator",
             "packet", "--no-shrink", "--csv", str(tmp_path / "csv"),
             "--telemetry", "trace", "--telemetry-dir", str(tel_dir)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "telemetry metrics:" in out
        assert (tel_dir / "metrics.json").exists()
        assert (tel_dir / "events.jsonl").exists()

        assert main(["metrics", str(tel_dir), "--profile"]) == 0
        out = capsys.readouterr().out
        assert "telemetry export" in out
        assert "drops_by_cause_packets" in out

    def test_telemetry_does_not_change_results(self, tmp_path, capsys):
        base_csv = tmp_path / "base"
        traced_csv = tmp_path / "traced"
        common = ["chaos", "--seed", "11", "--campaigns", "1",
                  "--simulator", "packet", "--no-shrink"]
        assert main(common + ["--csv", str(base_csv)]) == 0
        assert main(
            common
            + ["--csv", str(traced_csv), "--telemetry", "trace",
               "--telemetry-dir", str(tmp_path / "tel")]
        ) == 0
        capsys.readouterr()
        base = (base_csv / "chaos.csv").read_text()
        traced = (traced_csv / "chaos.csv").read_text()
        assert base == traced


class TestExecution:
    def test_run_fig03(self, capsys):
        assert main(["run", "fig03"]) == 0
        out = capsys.readouterr().out
        assert "1500" in out and "40" in out

    def test_run_fig04(self, capsys):
        assert main(["run", "fig04"]) == 0
        out = capsys.readouterr().out
        assert "synchronized" in out

    def test_run_fig02_small(self, capsys):
        assert main(
            ["run", "fig02", "--scale", "0.05", "--seconds", "2",
             "--warmup", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "service/drop ratio" in out

    def test_run_fig11(self, capsys):
        assert main(["run", "fig11", "--variants", "f-root"]) == 0
        out = capsys.readouterr().out
        assert "localized" in out and "dispersed" in out

    def test_quickstart_small(self, capsys):
        assert main(
            ["quickstart", "--scale", "0.05", "--seconds", "2",
             "--warmup", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "attack" in out


class TestMultiJobRuns:
    def test_figures_flag_accepts_several(self):
        args = build_parser().parse_args(["run", "fig03", "fig04"])
        assert args.figures == ["fig03", "fig04"]
        assert args.workers is None

    def test_workers_and_process_faults_parsed(self):
        args = build_parser().parse_args(["run", "fig03", "--workers", "2"])
        assert args.workers == 2
        args = build_parser().parse_args(
            ["chaos", "--workers", "2", "--process-faults", "1"]
        )
        assert args.workers == 2
        assert args.process_faults == 1

    def test_multi_figure_serial_prints_status_table(self, capsys):
        assert main(["run", "fig03", "fig04"]) == 0
        out = capsys.readouterr().out
        assert "job statuses" in out
        assert "1500" in out  # fig03 table
        assert "synchronized" in out  # fig04 table

    def test_duplicate_figures_deduplicated(self, capsys):
        assert main(["run", "fig03", "fig03"]) == 0
        out = capsys.readouterr().out
        assert out.count("packet-size distribution") == 1

    def test_single_figure_keeps_quiet_output(self, capsys):
        assert main(["run", "fig03"]) == 0
        assert "job statuses" not in capsys.readouterr().out

    def test_process_faults_require_workers(self, capsys):
        assert main(["chaos", "--campaigns", "1", "--process-faults", "1"]) == 2
        assert "requires --workers" in capsys.readouterr().err

    def test_run_with_workers_matches_serial(self, tmp_path, capsys):
        serial_csv = tmp_path / "serial"
        fleet_csv = tmp_path / "fleet"
        assert main(["run", "fig03", "--csv", str(serial_csv)]) == 0
        assert main(
            ["run", "fig03", "--workers", "1", "--csv", str(fleet_csv)]
        ) == 0
        capsys.readouterr()
        assert (
            (serial_csv / "fig03.csv").read_text()
            == (fleet_csv / "fig03.csv").read_text()
        )


class TestTraceCommand:
    def test_trace_flags_parsed(self):
        args = build_parser().parse_args(
            ["run", "fig03", "--trace", "--trace-dir", "t"]
        )
        assert args.trace
        assert args.trace_dir == "t"
        args = build_parser().parse_args(["chaos", "--trace"])
        assert args.trace
        assert args.trace_dir == "trace"
        args = build_parser().parse_args(["trace", "report", "t"])
        assert args.command == "trace"
        assert args.action == "report"
        assert args.dir == "t"

    def test_run_trace_exports_and_reports(self, tmp_path, capsys):
        trace_dir = tmp_path / "trace"
        rc = main(
            ["run", "fig03", "--trace", "--trace-dir", str(trace_dir)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert (trace_dir / "trace.json").exists()

        assert main(["trace", "report", str(trace_dir)]) == 0
        report = capsys.readouterr().out
        assert "critical path" in report
        assert "timeline" in report

        out_json = tmp_path / "exported.json"
        assert main(
            ["trace", "export", str(trace_dir), "--out", str(out_json)]
        ) == 0
        assert out_json.exists()

    def test_trace_does_not_change_results(self, tmp_path, capsys):
        base_csv = tmp_path / "base"
        traced_csv = tmp_path / "traced"
        common = ["chaos", "--seed", "11", "--campaigns", "1",
                  "--simulator", "packet", "--no-shrink"]
        assert main(common + ["--csv", str(base_csv)]) == 0
        assert main(
            common
            + ["--csv", str(traced_csv), "--trace", "--trace-dir",
               str(tmp_path / "trace")]
        ) == 0
        capsys.readouterr()
        assert (
            (base_csv / "chaos.csv").read_text()
            == (traced_csv / "chaos.csv").read_text()
        )

    def test_trace_report_missing_dir_is_loud_nodata(self, tmp_path, capsys):
        rc = main(["trace", "report", str(tmp_path / "nope")])
        assert rc == 7
        err = capsys.readouterr().err
        assert "error:" in err
        assert "hint:" in err

    def test_metrics_missing_dir_is_loud_nodata(self, tmp_path, capsys):
        rc = main(["metrics", str(tmp_path / "nope")])
        assert rc == 7
        err = capsys.readouterr().err
        assert "error:" in err
        assert "hint:" in err
