"""Attack traffic sources: CBR pacing, Shrew duty cycle, covert fanout."""

import pytest

from repro.net.engine import Engine
from repro.net.topology import Topology
from repro.traffic.cbr import CbrSource
from repro.traffic.covert import CovertSource
from repro.traffic.shrew import ShrewSource


def simple_engine(n_servers=1):
    topo = Topology()
    topo.add_duplex_link("bot", "r0", capacity=None)
    topo.add_duplex_link("r0", "hub", capacity=None)
    for i in range(n_servers):
        topo.add_duplex_link("hub", f"srv{i}", capacity=None)
    return Engine(topo, seed=9)


class TestCbr:
    def test_handshake_precedes_data(self):
        engine = simple_engine()
        flow = engine.open_flow("bot", "srv0", path_id=(1,), is_attack=True)
        src = CbrSource(flow, rate=2.0)
        engine.add_source(src)
        engine.run(5)
        assert not src.established or src.packets_sent == 0 or src.established

        engine.run(20)
        assert src.established
        assert src.packets_sent > 0

    def test_rate_is_respected(self):
        engine = simple_engine()
        flow = engine.open_flow("bot", "srv0", path_id=(1,), is_attack=True)
        src = CbrSource(flow, rate=2.5)
        engine.add_source(src)
        monitor = engine.add_monitor("r0", "hub")
        engine.run(500)
        # rate should be ~2.5 pkts/tick once established (minus handshake)
        assert monitor.total_serviced == pytest.approx(2.5 * 500, rel=0.05)

    def test_fractional_rate_accumulates(self):
        engine = simple_engine()
        flow = engine.open_flow("bot", "srv0", path_id=(1,), is_attack=True)
        src = CbrSource(flow, rate=0.25, handshake=False)
        engine.add_source(src)
        engine.run(400)
        assert src.packets_sent == pytest.approx(100, abs=2)

    def test_stop_tick(self):
        engine = simple_engine()
        flow = engine.open_flow("bot", "srv0", path_id=(1,), is_attack=True)
        src = CbrSource(flow, rate=1.0, handshake=False, stop_tick=100)
        engine.add_source(src)
        engine.run(400)
        assert src.packets_sent == pytest.approx(100, abs=1)

    def test_no_handshake_mode_sends_immediately(self):
        engine = simple_engine()
        flow = engine.open_flow("bot", "srv0", path_id=(1,), is_attack=True)
        src = CbrSource(flow, rate=1.0, handshake=False)
        engine.add_source(src)
        engine.run(3)
        assert src.packets_sent == 3


class TestShrew:
    def test_duty_cycle(self):
        engine = simple_engine()
        flow = engine.open_flow("bot", "srv0", path_id=(1,), is_attack=True)
        src = ShrewSource(
            flow, burst_rate=4.0, period_ticks=20, on_ticks=5, handshake=False
        )
        engine.add_source(src)
        engine.run(400)
        # average rate = 4.0 * 5/20 = 1.0
        assert src.packets_sent == pytest.approx(400, rel=0.05)
        assert src.average_rate == pytest.approx(1.0)

    def test_burst_confined_to_on_phase(self):
        engine = simple_engine()
        flow = engine.open_flow("bot", "srv0", path_id=(1,), is_attack=True)
        src = ShrewSource(
            flow, burst_rate=3.0, period_ticks=10, on_ticks=2, phase=0,
            handshake=False,
        )
        assert src.current_rate(0) == 3.0
        assert src.current_rate(1) == 3.0
        assert src.current_rate(2) == 0.0
        assert src.current_rate(9) == 0.0
        assert src.current_rate(10) == 3.0

    def test_phase_shifts_burst(self):
        engine = simple_engine()
        flow = engine.open_flow("bot", "srv0", path_id=(1,), is_attack=True)
        src = ShrewSource(
            flow, burst_rate=3.0, period_ticks=10, on_ticks=2, phase=5,
            handshake=False,
        )
        assert src.current_rate(0) == 0.0
        assert src.current_rate(5) == 3.0

    def test_invalid_parameters_rejected(self):
        engine = simple_engine()
        flow = engine.open_flow("bot", "srv0", path_id=(1,), is_attack=True)
        with pytest.raises(ValueError):
            ShrewSource(flow, burst_rate=1.0, period_ticks=0, on_ticks=1)
        with pytest.raises(ValueError):
            ShrewSource(flow, burst_rate=1.0, period_ticks=10, on_ticks=11)


class TestCovert:
    def test_fanout_flows_to_distinct_destinations(self):
        engine = simple_engine(n_servers=4)
        flows = [
            engine.open_flow("bot", f"srv{i}", path_id=(1,), is_attack=True)
            for i in range(4)
        ]
        src = CovertSource(flows, per_flow_rate=0.5)
        engine.add_source(src)
        assert src.fanout == 4
        assert src.total_rate == pytest.approx(2.0)
        monitor = engine.add_monitor("r0", "hub")
        engine.run(300)
        # every sub-flow carries traffic
        for flow in flows:
            assert monitor.service_counts.get(flow.flow_id, 0) > 0

    def test_flows_must_share_source_host(self):
        engine = simple_engine(n_servers=2)
        f1 = engine.open_flow("bot", "srv0", path_id=(1,), is_attack=True)
        topo = engine.topology
        topo.add_duplex_link("bot2", "r0", capacity=None)
        f2 = engine.open_flow("bot2", "srv1", path_id=(1,), is_attack=True)
        with pytest.raises(ValueError):
            CovertSource([f1, f2], per_flow_rate=0.5)

    def test_empty_flows_rejected(self):
        with pytest.raises(ValueError):
            CovertSource([], per_flow_rate=0.5)
