"""PathChurnFloodSource: the state-exhaustion adversary."""

import pickle

import pytest

from repro.errors import ConfigError
from repro.net.engine import Engine
from repro.net.topology import Topology
from repro.traffic.churn import CHURN_ORIGIN_BASE, PathChurnFloodSource


def simple_engine(seed=9):
    topo = Topology()
    topo.add_duplex_link("bot", "r0", capacity=None)
    topo.add_duplex_link("r0", "hub", capacity=None)
    topo.add_duplex_link("hub", "srv0", capacity=None)
    return Engine(topo, seed=seed)


def churn_source(engine, **kwargs):
    flow = engine.open_flow("bot", "srv0", path_id=(1, 2), is_attack=True)
    src = PathChurnFloodSource(flow, rate=1.0, **kwargs)
    engine.add_source(src)
    return src


class TestValidation:
    def test_bad_churn_interval_rejected(self):
        engine = simple_engine()
        flow = engine.open_flow("bot", "srv0", path_id=(1,), is_attack=True)
        with pytest.raises(ConfigError):
            PathChurnFloodSource(flow, rate=1.0, churn_interval=0)

    def test_bad_id_space_rejected(self):
        engine = simple_engine()
        flow = engine.open_flow("bot", "srv0", path_id=(1,), is_attack=True)
        with pytest.raises(ConfigError):
            PathChurnFloodSource(flow, rate=1.0, id_space=0)


class TestChurn:
    def test_rotates_on_cadence(self):
        engine = simple_engine()
        src = churn_source(engine, churn_interval=20, handshake=False)
        engine.run(105)
        # first active tick arms the timer; rotations land every 20 ticks
        assert src.churns == 5

    def test_churned_pid_keeps_tree_suffix(self):
        engine = simple_engine()
        src = churn_source(engine, churn_interval=5, handshake=False)
        engine.run(30)
        assert src.churns > 0
        origin = src.flow.path_id[0]
        assert origin >= CHURN_ORIGIN_BASE
        assert src.flow.path_id[1:] == (2,)

    def test_distinct_identifiers_under_churn(self):
        engine = simple_engine()
        src = churn_source(
            engine, churn_interval=2, id_space=1_000_000, handshake=False
        )
        seen = set()
        for _ in range(200):
            engine.run(2)
            seen.add(src.flow.path_id)
        assert len(seen) > 150  # fresh draws, collisions negligible

    def test_rehandshake_sheds_identity_then_reestablishes(self):
        engine = simple_engine()
        src = churn_source(engine, churn_interval=1000, rehandshake=True)
        engine.run(20)
        assert src.established  # initial handshake completed
        src._churn(engine.tick)
        # the old identity is shed completely: the bot must re-SYN for a
        # capability bound to the fresh identifier
        assert not src.established
        assert src.capability is None
        engine.run(20)
        assert src.established

    def test_no_rehandshake_keeps_stale_capability(self):
        engine = simple_engine()
        src = churn_source(engine, churn_interval=10, rehandshake=False)
        engine.run(60)
        assert src.churns > 0
        assert src.established  # never re-SYNs: stale identity retained

    def test_deterministic_across_runs(self):
        def pids(seed):
            engine = simple_engine(seed=seed)
            src = churn_source(engine, churn_interval=3, handshake=False)
            out = []
            for _ in range(30):
                engine.run(3)
                out.append(src.flow.path_id)
            return out

        assert pids(5) == pids(5)
        assert pids(5) != pids(6)

    def test_picklable_before_start(self):
        engine = simple_engine()
        src = churn_source(engine, churn_interval=10)
        clone = pickle.loads(pickle.dumps(src))
        assert clone.churn_interval == 10
