"""Adaptive attack sources: validation, marked-detection, determinism."""

import pickle
import random

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.net.engine import Engine
from repro.net.topology import Topology
from repro.traffic.adaptive import (
    AdaptiveCbrSource,
    AdaptiveShrewSource,
    FluidRateRandomizer,
)
from repro.traffic.cbr import CbrSource


def throttled_engine(seed=9, capacity=1.0):
    """A bot behind a bottleneck so its ack ratio collapses quickly."""
    topo = Topology()
    topo.add_duplex_link("bot", "r0", capacity=None)
    topo.add_duplex_link("r0", "hub", capacity=capacity)
    topo.add_duplex_link("hub", "srv", capacity=None)
    return Engine(topo, seed=seed)


def adaptive_cbr(engine, mutations, **kwargs):
    flow = engine.open_flow("bot", "srv", path_id=(1,), is_attack=True)
    kwargs.setdefault("rate", 6.0)
    kwargs.setdefault("adapt_interval", 40)
    kwargs.setdefault("handshake", False)
    src = AdaptiveCbrSource(flow, mutations=mutations, **kwargs)
    engine.add_source(src)
    return src


class TestValidation:
    def test_unknown_cbr_mutation_rejected(self):
        engine = throttled_engine()
        flow = engine.open_flow("bot", "srv", path_id=(1,), is_attack=True)
        with pytest.raises(ConfigError):
            AdaptiveCbrSource(flow, rate=1.0, mutations=("rephase",))

    def test_unknown_shrew_mutation_rejected(self):
        engine = throttled_engine()
        flow = engine.open_flow("bot", "srv", path_id=(1,), is_attack=True)
        with pytest.raises(ConfigError):
            AdaptiveShrewSource(
                flow, burst_rate=1.0, period_ticks=10, on_ticks=2,
                mutations=("churn",),
            )

    def test_churn_requires_a_path_id_pool(self):
        engine = throttled_engine()
        flow = engine.open_flow("bot", "srv", path_id=(1,), is_attack=True)
        with pytest.raises(ConfigError):
            AdaptiveCbrSource(flow, rate=1.0, mutations=("churn",))

    def test_rate_bounds_must_be_positive_and_ordered(self):
        engine = throttled_engine()
        flow = engine.open_flow("bot", "srv", path_id=(1,), is_attack=True)
        for bounds in ((0.0, 1.0), (-1.0, 1.0), (2.0, 1.0)):
            with pytest.raises(ConfigError):
                AdaptiveCbrSource(
                    flow, rate=1.0, mutations=("rerandomize",),
                    rate_bounds=bounds,
                )

    def test_adapt_interval_and_loss_threshold_bounds(self):
        engine = throttled_engine()
        flow = engine.open_flow("bot", "srv", path_id=(1,), is_attack=True)
        with pytest.raises(ConfigError):
            AdaptiveCbrSource(flow, rate=1.0, adapt_interval=0)
        for threshold in (0.0, 1.5, -0.1):
            with pytest.raises(ConfigError):
                AdaptiveCbrSource(flow, rate=1.0, loss_threshold=threshold)

    def test_fluid_randomizer_parameter_bounds(self):
        with pytest.raises(ConfigError):
            FluidRateRandomizer(interval=0)
        for spread in (0.0, 1.0, 1.5):
            with pytest.raises(ConfigError):
                FluidRateRandomizer(spread=spread)


class TestAdaptation:
    def test_throttled_bot_rerandomizes_within_bounds(self):
        engine = throttled_engine()
        src = adaptive_cbr(
            engine, ("rerandomize",), rate_bounds=(2.0, 10.0)
        )
        engine.run(400)
        assert src.adaptations > 0
        assert 2.0 <= src.rate <= 10.0
        assert src.rate != 6.0

    def test_churn_rotates_through_the_pool(self):
        engine = throttled_engine()
        pool = ((1,), (7,), (9,))
        src = adaptive_cbr(engine, ("churn",), path_id_pool=pool)
        engine.run(400)
        assert src.adaptations > 0
        # the pool index advances once per adaptation, wrapping around
        assert src.flow.path_id == pool[src.adaptations % len(pool)]

    def test_unthrottled_bot_never_adapts(self):
        engine = throttled_engine(capacity=None)
        src = adaptive_cbr(engine, ("rerandomize",), rate=2.0)
        engine.run(400)
        assert src.adaptations == 0
        assert src.rate == 2.0

    def test_no_mutations_behaves_exactly_like_plain_cbr(self):
        adaptive_engine = throttled_engine(seed=4)
        src = adaptive_cbr(adaptive_engine, ())
        plain_engine = throttled_engine(seed=4)
        flow = plain_engine.open_flow(
            "bot", "srv", path_id=(1,), is_attack=True
        )
        plain = CbrSource(flow, rate=6.0, handshake=False)
        plain_engine.add_source(plain)
        adaptive_engine.run(300)
        plain_engine.run(300)
        assert src.packets_sent == plain.packets_sent
        assert src.adaptations == 0

    def test_shrew_rephases_when_throttled(self):
        engine = throttled_engine()
        flow = engine.open_flow("bot", "srv", path_id=(1,), is_attack=True)
        src = AdaptiveShrewSource(
            flow, burst_rate=8.0, period_ticks=20, on_ticks=5,
            mutations=("rephase", "rerandomize"), handshake=False,
        )
        engine.add_source(src)
        engine.run(400)
        assert src.adaptations > 0
        assert 0 <= src.phase < src.period_ticks
        lo, hi = src.rate_bounds
        assert lo <= src.burst_rate <= hi

    def test_adaptation_is_seed_deterministic(self):
        def run_once():
            engine = throttled_engine(seed=21)
            src = adaptive_cbr(engine, ("rerandomize",))
            engine.run(400)
            return (src.adaptations, src.rate, src.packets_sent)

        assert run_once() == run_once()

    def test_sources_are_picklable(self):
        engine = throttled_engine()
        src = adaptive_cbr(engine, ("rerandomize",))
        engine.run(200)
        clone = pickle.loads(pickle.dumps(src))
        assert clone.adaptations == src.adaptations
        assert clone.rate == src.rate


class _StubFluidSim:
    """Just enough FluidSimulator surface for the randomizer hook."""

    def __init__(self, n_flows=10, n_bots=4, base=2.0):
        self.n_flows = n_flows
        self.is_attack = np.zeros(n_flows, dtype=bool)
        self.is_attack[:n_bots] = True

        class _Scn:
            pass

        self.scn = _Scn()
        self.scn.attack_rate = base

    def spawn_rng(self, name):
        return random.Random(f"stub:{name}")


class TestFluidRateRandomizer:
    def test_aggregate_flood_is_preserved(self):
        sim = _StubFluidSim(n_bots=4, base=2.0)
        hook = FluidRateRandomizer(interval=10, spread=0.5)
        hook(sim, 0)
        assert hook.rerolls == 1
        rates = sim.scn.attack_rate
        assert rates.shape == (sim.n_flows,)
        assert rates[sim.is_attack].sum() == pytest.approx(4 * 2.0)
        assert not np.allclose(rates[sim.is_attack], 2.0)
        assert np.allclose(rates[~sim.is_attack], 2.0)

    def test_only_fires_on_the_interval(self):
        sim = _StubFluidSim()
        hook = FluidRateRandomizer(interval=10, spread=0.5)
        for tick in range(25):
            hook(sim, tick)
        assert hook.rerolls == 3  # ticks 0, 10, 20

    def test_no_bots_is_a_no_op(self):
        sim = _StubFluidSim(n_bots=0)
        hook = FluidRateRandomizer(interval=5, spread=0.3)
        hook(sim, 0)
        assert hook.rerolls == 0
        assert sim.scn.attack_rate == 2.0

    def test_rerolls_are_deterministic(self):
        def run_once():
            sim = _StubFluidSim()
            hook = FluidRateRandomizer(interval=10, spread=0.5)
            for tick in range(40):
                hook(sim, tick)
            return sim.scn.attack_rate.tolist()

        assert run_once() == run_once()

    def test_hook_is_picklable(self):
        hook = FluidRateRandomizer(interval=10, spread=0.5)
        hook(_StubFluidSim(), 0)
        clone = pickle.loads(pickle.dumps(hook))
        assert clone.rerolls == hook.rerolls
