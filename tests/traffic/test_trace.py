"""Synthetic packet-size trace generator (FIG-3 substitute)."""

import random

import pytest

from repro.traffic.trace import DEFAULT_MODES, PacketSizeDistribution, SizeMode


class TestSampling:
    def test_bimodal_shape(self):
        dist = PacketSizeDistribution()
        sizes = dist.sample(20_000, random.Random(1))
        fractions = dist.mode_fractions(sizes)
        # control packets and full-size data dominate
        assert fractions[40] > 0.30
        assert fractions[1500] > 0.35
        # the VPN mode is present but secondary
        assert 0.02 < fractions[1300] < 0.25

    def test_sizes_never_below_40(self):
        dist = PacketSizeDistribution()
        sizes = dist.sample(5_000, random.Random(2))
        assert min(sizes) >= 40

    def test_deterministic_given_seed(self):
        dist = PacketSizeDistribution()
        a = dist.sample(100, random.Random(3))
        b = dist.sample(100, random.Random(3))
        assert a == b

    def test_custom_modes(self):
        dist = PacketSizeDistribution(modes=[SizeMode(size=100, weight=1.0)])
        assert dist.sample(10, random.Random(4)) == [100] * 10

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            PacketSizeDistribution(modes=[SizeMode(size=100, weight=0.0)])


class TestCdf:
    def test_cdf_monotone_and_ends_at_one(self):
        dist = PacketSizeDistribution()
        sizes = dist.sample(1_000, random.Random(5))
        cdf = dist.cdf(sizes)
        xs = [x for x, _ in cdf]
        ys = [y for _, y in cdf]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == pytest.approx(1.0)

    def test_cdf_deduplicates_sizes(self):
        dist = PacketSizeDistribution()
        cdf = dist.cdf([40, 40, 1500])
        assert cdf == [(40, pytest.approx(2 / 3)), (1500, pytest.approx(1.0))]

    def test_default_modes_cover_paper_figure(self):
        sizes = {mode.size for mode in DEFAULT_MODES}
        assert {40, 1300, 1500} <= sizes
