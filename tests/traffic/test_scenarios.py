"""Section VI tree scenario construction."""

import pytest

from repro.errors import ConfigError
from repro.traffic.scenarios import DST_HUB, ROOT, build_tree_scenario


class TestStructure:
    def test_paper_tree_has_27_paths(self):
        sc = build_tree_scenario(scale_factor=0.05, attack_kind="none")
        assert len(sc.path_ids) == 27
        assert len(set(sc.path_ids)) == 27

    def test_path_ids_end_at_root_as(self):
        sc = build_tree_scenario(scale_factor=0.05, attack_kind="none")
        # all paths share the root AS as their final (router-side) element
        assert len({pid[-1] for pid in sc.path_ids}) == 1
        # height-3 tree: origin + 2 interior + root = 4 AS hops
        assert all(len(pid) == 4 for pid in sc.path_ids)

    def test_six_attack_paths(self):
        sc = build_tree_scenario(scale_factor=0.05, attack_kind="cbr")
        assert len(sc.attack_path_ids) == 6
        assert len(sc.legit_path_ids) == 21

    def test_flow_counts_scale(self):
        sc = build_tree_scenario(scale_factor=0.1, attack_kind="cbr")
        assert len(sc.legit_flows) == 27 * 3  # 30 * 0.1 = 3 per leaf
        assert len(sc.attack_flows) == 6 * 6  # 60 * 0.1 = 6 per attack leaf

    def test_capacity_scales_with_flows(self):
        # use scales where per-leaf counts divide evenly, so integer
        # rounding of flow counts does not distort the comparison
        lo = build_tree_scenario(scale_factor=0.1, attack_kind="none")
        hi = build_tree_scenario(scale_factor=0.2, attack_kind="none")
        per_flow_lo = lo.capacity / len(lo.legit_flows)
        per_flow_hi = hi.capacity / len(hi.legit_flows)
        # per-flow fair share is scale-invariant (within rounding)
        assert per_flow_lo == pytest.approx(per_flow_hi, rel=0.15)

    def test_target_link_configured(self):
        sc = build_tree_scenario(scale_factor=0.05, attack_kind="none")
        link = sc.topology.link(ROOT, DST_HUB)
        assert link.capacity == pytest.approx(sc.capacity)
        assert link.buffer is not None and link.buffer > 0

    def test_unknown_attack_kind_rejected(self):
        with pytest.raises(ConfigError):
            build_tree_scenario(attack_kind="quantum")


class TestAttackVariants:
    def test_attack_flows_marked(self):
        sc = build_tree_scenario(scale_factor=0.05, attack_kind="cbr")
        assert all(f.is_attack for f in sc.attack_flows)
        assert not any(f.is_attack for f in sc.legit_flows)

    def test_covert_creates_fanout_flows(self):
        sc = build_tree_scenario(
            scale_factor=0.05, attack_kind="covert", covert_fanout=4
        )
        # each bot owns `fanout` flows
        n_bots = len(sc.attack_sources)
        assert len(sc.attack_flows) == 4 * n_bots
        # destinations differ within one bot
        by_host = {}
        for flow in sc.attack_flows:
            by_host.setdefault(flow.src_host, set()).add(flow.dst_host)
        assert all(len(dsts) == 4 for dsts in by_host.values())

    def test_legit_count_overrides(self):
        sc = build_tree_scenario(
            scale_factor=1.0,
            attack_kind="none",
            legit_per_leaf=4,
            legit_count_overrides={0: 2, 1: 2},
        )
        per_leaf = {}
        for flow in sc.legit_flows:
            per_leaf[flow.path_id] = per_leaf.get(flow.path_id, 0) + 1
        counts = sorted(per_leaf.values())
        assert counts.count(2) == 2
        assert counts.count(4) == 25

    def test_none_attack_kind_has_no_attackers(self):
        sc = build_tree_scenario(scale_factor=0.05, attack_kind="none")
        assert sc.attack_flows == []
        assert sc.attack_sources == []


class TestRun:
    def test_runs_and_measures(self, no_attack_tree):
        monitor = no_attack_tree.add_target_monitor(start_seconds=1.0)
        no_attack_tree.run_seconds(3.0)
        assert monitor.total_serviced > 0

    def test_fair_flow_rate(self, small_tree):
        total = len(small_tree.legit_flows) + len(small_tree.attack_flows)
        assert small_tree.fair_flow_rate() == pytest.approx(
            small_tree.capacity / total
        )
