"""Rolling (timed) attacks: the attack location cycles across domains."""

import pytest

from repro.experiments.common import FunctionalSettings, run_breakdown
from repro.traffic.scenarios import build_tree_scenario
from repro.traffic.shrew import ShrewSource

SETTINGS = FunctionalSettings(scale=0.08, warmup_seconds=3.0,
                              measure_seconds=8.0, seed=12)


def rolling_scenario(seed=12):
    return build_tree_scenario(
        scale_factor=SETTINGS.scale,
        attack_kind="rolling",
        attack_rate_mbps=8.0,  # full-rate burst while a domain is "on"
        rolling_period_seconds=2.0,
        seed=seed,
        start_spread_seconds=1.0,
    )


class TestConstruction:
    def test_rolling_sources_are_staggered(self):
        scenario = rolling_scenario()
        phases = set()
        for source in scenario.attack_sources:
            assert isinstance(source, ShrewSource)
            phases.add(source.phase)
        # each contaminated domain attacks in its own time slot
        assert len(phases) == len(scenario.attack_path_ids)

    def test_slots_cover_the_cycle(self):
        scenario = rolling_scenario()
        src = scenario.attack_sources[0]
        assert src.on_ticks * len(scenario.attack_path_ids) <= src.period_ticks

    def test_exactly_one_domain_active_at_a_time(self):
        scenario = rolling_scenario()
        by_phase = {}
        for source in scenario.attack_sources:
            by_phase.setdefault(source.phase, set()).add(
                source.flow.path_id
            )
        for paths in by_phase.values():
            assert len(paths) == 1


class TestDefense:
    def test_floc_withstands_rolling_attack(self):
        run = run_breakdown(rolling_scenario(), "floc", SETTINGS)
        assert run.breakdown.legit_total > 0.6

    def test_floc_beats_no_defense(self):
        floc = run_breakdown(rolling_scenario(), "floc", SETTINGS)
        nodef = run_breakdown(rolling_scenario(), "droptail", SETTINGS)
        assert floc.breakdown.legit_total > nodef.breakdown.legit_total

    def test_rolling_evades_pushback_better_than_static(self):
        """The Section II critique: a filter installed on last interval's
        attacker misses this interval's — rolling attacks cost Pushback
        more legitimate bandwidth than an equivalent static flood."""
        rolling = run_breakdown(rolling_scenario(), "pushback", SETTINGS)
        static = build_tree_scenario(
            scale_factor=SETTINGS.scale,
            attack_kind="cbr",
            # same long-run average offered load: 8.0 / 6 domains
            attack_rate_mbps=8.0 / 6.0,
            seed=12,
            start_spread_seconds=1.0,
        )
        static_run = run_breakdown(static, "pushback", SETTINGS)
        assert (
            rolling.breakdown.legit_total
            <= static_run.breakdown.legit_total + 0.05
        )
