"""Property-based tests on the shard partitioner.

The bit-identity guarantee of sharded runs rests on the partitioner
being a *total, stable partition* of the path-identifier space: every
path id lands in exactly one shard, the assignment never depends on
enumeration order or on which process computes it, and it is a pure
function of ``(path_id, n_shards, seed)``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.inet.shard import shard_of_path

path_ids = st.lists(
    st.integers(min_value=0, max_value=100_000), min_size=1, max_size=12
).map(tuple)


class TestShardOfPathProperties:
    @given(
        pid=path_ids,
        n_shards=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=200)
    def test_total_and_in_range(self, pid, n_shards, seed):
        shard = shard_of_path(pid, n_shards, seed)
        assert isinstance(shard, int)
        assert 0 <= shard < n_shards

    @given(
        pid=path_ids,
        n_shards=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=100)
    def test_deterministic_per_seed_and_width(self, pid, n_shards, seed):
        assert shard_of_path(pid, n_shards, seed) == shard_of_path(
            pid, n_shards, seed
        )
        assert shard_of_path(list(pid), n_shards, seed) == shard_of_path(
            pid, n_shards, seed
        )

    @given(
        pids=st.lists(path_ids, min_size=2, max_size=40, unique=True),
        n_shards=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=100)
    def test_iteration_order_independent(self, pids, n_shards, seed):
        forward = {pid: shard_of_path(pid, n_shards, seed) for pid in pids}
        backward = {
            pid: shard_of_path(pid, n_shards, seed)
            for pid in reversed(pids)
        }
        assert forward == backward

    @given(
        pids=st.lists(path_ids, min_size=1, max_size=40, unique=True),
        n_shards=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=100)
    def test_exactly_one_shard_claims_each_pid(self, pids, n_shards, seed):
        for pid in pids:
            claims = [
                shard
                for shard in range(n_shards)
                if shard_of_path(pid, n_shards, seed) == shard
            ]
            assert len(claims) == 1

    @given(
        pid=path_ids,
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=50)
    def test_single_shard_owns_everything(self, pid, seed):
        assert shard_of_path(pid, 1, seed) == 0
