"""Property-based tests (hypothesis) on core data structures and models."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cdf import cdf_at, empirical_cdf, percentile
from repro.core.aggregation import build_plan
from repro.core.conformance import ConformanceTracker
from repro.core.pathid import PathTree, common_suffix
from repro.core.tokenbucket import PathTokenBucket
from repro.tcp import model

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
positive = st.floats(min_value=0.01, max_value=1e4, allow_nan=False)
pid_strategy = st.lists(
    st.integers(min_value=1, max_value=30), min_size=1, max_size=6
).map(tuple)


class TestTcpModelProperties:
    @given(bw=positive, rtt=positive, n=st.floats(min_value=1, max_value=1e4))
    def test_token_period_and_bucket_consistent(self, bw, rtt, n):
        t = model.token_period(bw, rtt, n)
        assert t > 0
        assert model.bucket_size(bw, rtt, n) == bw * t

    @given(bw=positive, rtt=positive, n=st.floats(min_value=1, max_value=1e4))
    def test_increased_bucket_dominates_base(self, bw, rtt, n):
        assert model.increased_bucket_size(bw, rtt, n) > model.bucket_size(
            bw, rtt, n
        )

    @given(w=st.floats(min_value=0.1, max_value=1e5))
    def test_drop_ratio_inverse_roundtrip(self, w):
        gamma = model.drop_ratio(w)
        assert math.isclose(
            model.window_from_drop_ratio(gamma), w, rel_tol=1e-6
        )

    @given(w=st.floats(min_value=0.1, max_value=1e5))
    def test_drop_ratio_in_unit_interval(self, w):
        gamma = model.drop_ratio(w)
        assert 0.0 < gamma
        # gamma can exceed 1 only for sub-packet windows
        if w >= 2.0:
            assert gamma <= 1.0

    @given(
        bw=positive,
        rtt=st.floats(min_value=0.1, max_value=100),
        n=st.floats(min_value=1, max_value=1000),
    )
    def test_flow_count_estimator_roundtrip(self, bw, rtt, n):
        w = model.peak_window(bw, rtt, n)
        delta = model.drop_rate(bw, w)
        assert math.isclose(
            model.flows_from_drop_rate(bw, rtt, delta), n, rel_tol=1e-6
        )


class TestPathTreeProperties:
    @given(st.lists(pid_strategy, min_size=1, max_size=30))
    def test_tree_preserves_all_paths(self, pids):
        tree = PathTree(pids)
        recovered = sorted(tree.root.descend_leaves())
        assert recovered == sorted(pids)

    @given(pid_strategy, pid_strategy)
    def test_common_suffix_is_suffix_of_both(self, a, b):
        s = common_suffix(a, b)
        assert a[len(a) - len(s):] == s
        assert b[len(b) - len(s):] == s

    @given(pid_strategy)
    def test_common_suffix_idempotent(self, a):
        assert common_suffix(a, a) == a


class TestTokenBucketProperties:
    @given(
        bw=st.floats(min_value=0.1, max_value=100),
        rtt=st.floats(min_value=1, max_value=100),
        n=st.integers(min_value=1, max_value=500),
    )
    def test_grants_never_exceed_size_per_period(self, bw, rtt, n):
        bucket = PathTokenBucket(bw, rtt, n, now=0)
        granted = sum(1 for _ in range(100_000) if bucket.request())
        assert granted <= bucket.size

    @given(
        bw=st.floats(min_value=0.1, max_value=50),
        rtt=st.floats(min_value=1, max_value=50),
        n=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=25, deadline=None)
    def test_long_run_rate_bounded_by_bandwidth(self, bw, rtt, n):
        bucket = PathTokenBucket(bw, rtt, n, now=0)
        bucket.use_increased = False
        granted = 0
        horizon = min(5_000, 50 * bucket.period)
        horizon = max(horizon, bucket.period)
        for tick in range(1, horizon + 1):
            bucket.on_tick(tick)
            while bucket.request():
                granted += 1
        # the bucket admits at most its size per period (the size is
        # clamped to >= 1 token, so sub-packet rates round up to one
        # packet per period)
        n_periods = horizon / bucket.period
        assert granted <= (n_periods + 2) * bucket.base_size


class TestConformanceProperties:
    @given(
        updates=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=100),
                st.integers(min_value=0, max_value=100),
            ).filter(lambda t: t[1] <= t[0]),
            min_size=1,
            max_size=50,
        )
    )
    def test_conformance_stays_in_unit_interval(self, updates):
        tracker = ConformanceTracker(beta=0.2)
        for n, n_attack in updates:
            value = tracker.update((1,), n, n_attack)
            assert 0.0 <= value <= 1.0


class TestAggregationProperties:
    @given(
        legit=st.lists(pid_strategy, min_size=0, max_size=15, unique=True),
        attack=st.lists(pid_strategy, min_size=0, max_size=15, unique=True),
        s_max=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=60)
    def test_plan_is_a_partition(self, legit, attack, s_max):
        attack = [p for p in attack if p not in set(legit)]
        conf = {p: 1.0 for p in legit}
        conf.update({p: 0.1 for p in attack})
        counts = {p: 10.0 for p in legit + attack}
        plan = build_plan(legit, attack, conf, counts, s_max)
        # every path belongs to exactly one group
        seen = []
        for members in plan.members.values():
            seen.extend(members)
        assert sorted(seen) == sorted(legit + attack)
        # shares are positive and groups non-empty
        assert all(s > 0 for s in plan.shares.values())
        assert all(plan.members[k] for k in plan.members)

    @given(
        attack=st.lists(pid_strategy, min_size=2, max_size=20, unique=True),
        s_max=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=60)
    def test_attack_identifier_budget_respected(self, attack, s_max):
        conf = {p: 0.1 for p in attack}
        counts = {p: 5.0 for p in attack}
        plan = build_plan([], attack, conf, counts, s_max)
        budget = max(1, s_max)
        assert plan.n_groups <= max(budget, 1) or plan.n_groups <= len(attack)


class TestCdfProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1))
    def test_cdf_reaches_one(self, values):
        points = empirical_cdf(values)
        assert points[-1][1] == 1.0

    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1),
        st.floats(min_value=-1e6, max_value=1e6),
    )
    def test_cdf_at_matches_definition(self, values, x):
        frac = cdf_at(values, x)
        assert frac == sum(1 for v in values if v <= x) / len(values)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1))
    def test_percentile_bounds(self, values):
        assert percentile(values, 0.0) == min(values)
        assert percentile(values, 1.0) == max(values)
