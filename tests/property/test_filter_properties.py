"""Property-based tests on the drop-record filter and capabilities."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.capability import CapabilityIssuer
from repro.core.dropfilter import DropRecordFilter

keys = st.text(min_size=1, max_size=12)


class TestDropFilterProperties:
    @given(
        drops=st.lists(
            st.tuples(keys, st.integers(min_value=0, max_value=10_000)),
            min_size=0,
            max_size=100,
        )
    )
    @settings(max_examples=50)
    def test_ratio_always_in_unit_interval(self, drops):
        filt = DropRecordFilter(m=3, bits=8)
        for key, tick in sorted(drops, key=lambda kv: kv[1]):
            filt.record_drop(key, tick, epoch_ticks=50)
        for key, _ in drops:
            ratio = filt.preferential_drop_ratio(key, 10_001, 50)
            assert 0.0 <= ratio <= 1.0

    @given(
        n=st.integers(min_value=1, max_value=60),
        epoch=st.integers(min_value=1, max_value=200),
    )
    def test_burst_drops_counted_conservatively(self, n, epoch):
        # min-over-arrays estimate never exceeds the true drop count
        filt = DropRecordFilter(m=4, bits=10)
        for _ in range(n):
            filt.record_drop("flow", tick=0, epoch_ticks=epoch)
        assert filt.excess_drops("flow", 0, epoch) <= n

    @given(st.integers(min_value=0, max_value=1_000_000))
    def test_false_positive_ratio_in_unit_interval(self, n):
        fp = DropRecordFilter.false_positive_ratio(n, m=4, bits=20)
        assert 0.0 <= fp <= 1.0

    @given(
        n_total=st.floats(min_value=1, max_value=1e7),
        frac=st.floats(min_value=0.0, max_value=1.0),
        m=st.integers(min_value=1, max_value=8),
    )
    def test_select_k_always_valid(self, n_total, frac, m):
        n_attack = n_total * frac
        k = DropRecordFilter.select_k(n_total, n_attack, n_total / 2, m)
        assert 1 <= k <= m


class TestCapabilityProperties:
    @given(src=keys, dst=keys, pid=st.lists(st.integers(1, 99), min_size=1,
                                            max_size=5).map(tuple))
    def test_issue_verify_always_roundtrips(self, src, dst, pid):
        issuer = CapabilityIssuer(b"k", n_max=3)
        cap = issuer.issue(src, dst, pid)
        assert issuer.verify(cap, src, dst, pid)

    @given(
        src=keys,
        dsts=st.lists(keys, min_size=1, max_size=40, unique=True),
        n_max=st.integers(min_value=1, max_value=8),
    )
    def test_fanout_never_exceeds_n_max(self, src, dsts, n_max):
        issuer = CapabilityIssuer(b"k", n_max=n_max)
        units = {issuer.account_key(src, d, (1,)) for d in dsts}
        assert len(units) <= n_max
