"""Property-based tests (hypothesis) on the MTD tracker edge cases."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mtd import (
    INFINITE_MTD,
    FlowDropTracker,
    MtdClassifier,
    aggregate_mtd,
)

ticks = st.integers(min_value=0, max_value=100_000)
windows = st.integers(min_value=1, max_value=5_000)
bad_windows = st.integers(min_value=-1_000, max_value=0)


class TestEmptyHistory:
    @given(tick=ticks, window=windows)
    def test_untracked_key_has_infinite_mtd(self, tick, window):
        tracker = FlowDropTracker()
        assert tracker.mtd("ghost", tick, window) == INFINITE_MTD
        assert tracker.drops_in_window("ghost", tick, window) == 0

    @given(tick=ticks, window=windows)
    def test_forgotten_key_has_infinite_mtd(self, tick, window):
        tracker = FlowDropTracker()
        tracker.record_drop("f", tick)
        tracker.forget("f")
        assert tracker.mtd("f", tick, window) == INFINITE_MTD

    @given(tick=ticks, window=windows)
    def test_aggregate_of_empty_keys_is_infinite(self, tick, window):
        tracker = FlowDropTracker()
        mtd, drops = aggregate_mtd(tracker, ["a", "b"], tick, window)
        assert mtd == INFINITE_MTD
        assert drops == 0


class TestWindowValidation:
    @given(window=bad_windows)
    def test_mtd_rejects_non_positive_windows(self, window):
        tracker = FlowDropTracker()
        with pytest.raises(ValueError):
            tracker.mtd("f", 100, window)

    @given(window=bad_windows)
    def test_drops_in_window_rejects_non_positive_windows(self, window):
        tracker = FlowDropTracker()
        with pytest.raises(ValueError):
            tracker.drops_in_window("f", 100, window)

    @given(window=bad_windows)
    def test_aggregate_mtd_rejects_non_positive_windows(self, window):
        tracker = FlowDropTracker()
        with pytest.raises(ValueError):
            aggregate_mtd(tracker, ["f"], 100, window)

    @given(horizon=st.integers(min_value=-100, max_value=0))
    def test_tracker_rejects_non_positive_horizon(self, horizon):
        with pytest.raises(ValueError):
            FlowDropTracker(horizon=horizon)


class TestRecovery:
    @given(
        drops=st.lists(
            st.integers(min_value=0, max_value=500),
            min_size=1,
            max_size=50,
        ),
        window=st.integers(min_value=1, max_value=600),
        gap=st.integers(min_value=0, max_value=400),
    )
    @settings(max_examples=60)
    def test_mtd_is_monotone_after_drops_stop(self, drops, window, gap):
        """Once a flow stops dropping, its MTD can only rise as time
        passes — the self-healing property behind Eq. IV.5."""
        tracker = FlowDropTracker(horizon=2000)
        for t in sorted(drops):
            tracker.record_drop("f", t)
        last = max(drops)
        t1 = last + gap
        t2 = t1 + 1 + gap
        assert tracker.mtd("f", t2, window) >= tracker.mtd("f", t1, window)

    @given(
        n_drops=st.integers(min_value=1, max_value=40),
        window=st.integers(min_value=1, max_value=1000),
    )
    def test_mtd_eventually_returns_to_infinite(self, n_drops, window):
        tracker = FlowDropTracker(horizon=2000)
        for t in range(n_drops):
            tracker.record_drop("f", t)
        far = n_drops + max(window, tracker.horizon) + 1
        assert tracker.mtd("f", far, window) == INFINITE_MTD

    @given(
        n_drops=st.integers(min_value=1, max_value=100),
        window=windows,
        tick=ticks,
    )
    def test_mtd_matches_window_over_drop_count(self, n_drops, window, tick):
        tracker = FlowDropTracker(horizon=10**6)
        for _ in range(n_drops):
            tracker.record_drop("f", tick)
        expected = min(window, tracker.horizon) / n_drops
        assert tracker.mtd("f", tick, window) == pytest.approx(expected)


class TestClassifierEdges:
    @given(ref=st.floats(min_value=0.0, max_value=1e9, allow_nan=False))
    def test_infinite_mtd_is_always_serviced_and_never_flagged(self, ref):
        clf = MtdClassifier()
        assert clf.service_probability(INFINITE_MTD, ref) == 1.0
        assert not clf.is_attack_flow(INFINITE_MTD, ref)
        assert not clf.should_block(INFINITE_MTD, ref)

    @given(
        mtd=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
        ref=st.floats(min_value=1e-9, max_value=1e9, allow_nan=False),
    )
    def test_service_probability_is_a_probability(self, mtd, ref):
        p = MtdClassifier().service_probability(mtd, ref)
        assert 0.0 <= p <= 1.0
