"""Substrate-vs-model validation experiments."""

import pytest

from repro.tcp.validation import run_validation_point, run_validation_sweep


@pytest.fixture(scope="module")
def sweep():
    return run_validation_sweep(flow_counts=(4, 16), seed=1)


class TestValidation:
    def test_full_utilization_everywhere(self, sweep):
        for point in sweep:
            assert point.utilization > 0.9, point.n_flows

    def test_drop_rates_same_order_as_model(self, sweep):
        # the packet substrate drops somewhat more than the ideal model
        # (drop-tail bursts cause multi-drop epochs), but within a small
        # constant factor that shrinks as flows multiplex
        for point in sweep:
            assert 0.3 < point.drop_rate_ratio < 8.0, point.n_flows
        ratios = [p.drop_rate_ratio for p in sweep]
        assert ratios[-1] <= ratios[0]  # more flows -> closer to model

    def test_flow_count_estimator_order_of_magnitude(self, sweep):
        for point in sweep:
            assert 0.4 < point.flow_count_ratio < 3.0, point.n_flows

    def test_estimator_improves_with_multiplexing(self, sweep):
        errors = [abs(p.flow_count_ratio - 1.0) for p in sweep]
        assert errors[-1] <= errors[0] + 0.05

    def test_point_fields_consistent(self):
        point = run_validation_point(6, measure_ticks=800, warmup_ticks=400)
        assert point.n_flows == 6
        assert point.measured_rate > 0
        assert point.measured_drop_rate >= 0
        assert point.rtt_ticks == 8.0
