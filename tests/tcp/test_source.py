"""TCP source behaviour: handshake, AIMD, loss recovery, fairness."""

import pytest

from repro.net.engine import Engine
from repro.net.topology import Topology
from repro.tcp.source import TcpSource


def make_path(capacity=None, buffer=None, hops=2, seed=1):
    topo = Topology()
    nodes = ["h"] + [f"r{i}" for i in range(hops)] + ["srv"]
    for a, b in zip(nodes, nodes[1:]):
        topo.add_duplex_link(a, b, capacity=None)
    if capacity is not None:
        topo.add_link("h", "r0", capacity=capacity, buffer=buffer)
    engine = Engine(topo, seed=seed)
    return engine


class TestHandshake:
    def test_connection_establishes(self):
        engine = make_path()
        flow = engine.open_flow("h", "srv", path_id=(1,))
        src = TcpSource(flow)
        engine.add_source(src)
        engine.run(10)
        assert src.established
        assert src.srtt is not None and src.srtt >= 1

    def test_rtt_estimate_matches_path_length(self):
        engine = make_path(hops=4)  # 5 links each way -> RTT 10
        flow = engine.open_flow("h", "srv", path_id=(1,))
        src = TcpSource(flow)
        engine.add_source(src)
        engine.run(15)
        assert src.srtt == pytest.approx(10.0)

    def test_start_tick_respected(self):
        engine = make_path()
        flow = engine.open_flow("h", "srv", path_id=(1,))
        src = TcpSource(flow, start_tick=50)
        engine.add_source(src)
        engine.run(49)
        assert not src.established
        assert src.packets_sent == 0


class TestTransfer:
    def test_finite_transfer_completes(self):
        engine = make_path()
        flow = engine.open_flow("h", "srv", path_id=(1,))
        src = TcpSource(flow, total_packets=100)
        engine.add_source(src)
        engine.run(300)
        assert src.finished
        assert src.packets_sent >= 100

    def test_transfer_through_bottleneck_completes(self):
        engine = make_path(capacity=2.0, buffer=10)
        flow = engine.open_flow("h", "srv", path_id=(1,))
        src = TcpSource(flow, total_packets=200)
        engine.add_source(src)
        engine.run(2000)
        assert src.finished

    def test_persistent_flow_never_finishes(self):
        engine = make_path(capacity=2.0, buffer=10)
        flow = engine.open_flow("h", "srv", path_id=(1,))
        src = TcpSource(flow)
        engine.add_source(src)
        engine.run(500)
        assert not src.finished
        assert src.packets_sent > 100

    def test_slow_start_growth(self):
        engine = make_path()
        flow = engine.open_flow("h", "srv", path_id=(1,))
        src = TcpSource(flow, initial_cwnd=2.0)
        engine.add_source(src)
        engine.run(60)
        # unbounded path: no drops, so cwnd grows fast in slow start
        assert src.cwnd > 16
        assert src.loss_events == 0


class TestCongestionResponse:
    def test_drops_trigger_multiplicative_decrease(self):
        engine = make_path(capacity=1.0, buffer=5)
        flow = engine.open_flow("h", "srv", path_id=(1,))
        src = TcpSource(flow)
        engine.add_source(src)
        engine.run(600)
        assert src.loss_events > 0
        # the source must have settled near the path's capacity: cwnd is
        # bounded (no unbounded growth against a congested link)
        assert src.cwnd < 40

    def test_throughput_matches_capacity(self):
        engine = make_path(capacity=2.0, buffer=20)
        flow = engine.open_flow("h", "srv", path_id=(1,))
        src = TcpSource(flow)
        engine.add_source(src)
        monitor = engine.add_monitor("h", "r0")
        engine.run(1000)
        rate = monitor.total_serviced / 1000.0
        assert rate == pytest.approx(2.0, rel=0.15)

    def test_retransmissions_recover_losses(self):
        engine = make_path(capacity=1.0, buffer=3)
        flow = engine.open_flow("h", "srv", path_id=(1,))
        src = TcpSource(flow, total_packets=150)
        engine.add_source(src)
        engine.run(4000)
        assert src.finished  # despite drops, everything is delivered
        assert src.retransmissions + src.timeouts > 0

    def test_two_flows_share_bottleneck_fairly(self):
        topo = Topology()
        topo.add_duplex_link("h0", "r0", capacity=None)
        topo.add_duplex_link("h1", "r0", capacity=None)
        topo.add_duplex_link("r0", "r1", capacity=4.0, buffer=40)
        topo.add_duplex_link("r1", "srv", capacity=None)
        engine = Engine(topo, seed=5)
        flows = [
            engine.open_flow("h0", "srv", path_id=(1,)),
            engine.open_flow("h1", "srv", path_id=(1,)),
        ]
        sources = [TcpSource(f, start_tick=i * 7) for i, f in enumerate(flows)]
        for s in sources:
            engine.add_source(s)
        monitor = engine.add_monitor("r0", "r1")
        engine.run(3000)
        counts = [monitor.service_counts.get(f.flow_id, 0) for f in flows]
        assert min(counts) / max(counts) > 0.4  # rough long-run fairness
        assert sum(counts) == pytest.approx(4.0 * 3000, rel=0.1)
