"""Analytic TCP model: the paper's equations and their inverses."""

import math

import pytest

from repro.errors import ConfigError
from repro.tcp import model


class TestSingleFlow:
    def test_mean_window_is_three_quarters_peak(self):
        assert model.mean_window(8.0) == 6.0

    def test_window_std_uniform(self):
        # uniform on [W/2, W] has std (W/2)/sqrt(12)
        assert model.window_std(8.0) == pytest.approx(4.0 / math.sqrt(12.0))

    def test_bandwidth_window_roundtrip(self):
        bw = model.flow_bandwidth(peak_window=10.0, rtt=12.0)
        assert model.peak_window(bw, rtt=12.0, n_flows=1.0) == pytest.approx(10.0)

    def test_peak_window_shrinks_with_flows(self):
        w1 = model.peak_window(100.0, 10.0, 10)
        w2 = model.peak_window(100.0, 10.0, 20)
        assert w2 == pytest.approx(w1 / 2.0)

    def test_mtd_half_window_times_rtt(self):
        assert model.mtd(8.0, 10.0) == 40.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ConfigError):
            model.mean_window(0.0)
        with pytest.raises(ConfigError):
            model.peak_window(-1.0, 10.0)


class TestTokenBucketEquations:
    def test_eq_iv1_token_period(self):
        # T = (2/3) C RTT^2 / n^2
        assert model.token_period(30.0, 12.0, 6.0) == pytest.approx(
            (2.0 / 3.0) * 30.0 * 144.0 / 36.0
        )

    def test_token_period_equals_mtd_over_n(self):
        c, rtt, n = 30.0, 12.0, 6.0
        w = model.peak_window(c, rtt, n)
        assert model.token_period(c, rtt, n) == pytest.approx(
            model.mtd(w, rtt) / n
        )

    def test_eq_iv2_bucket_is_c_times_t(self):
        c, rtt, n = 30.0, 12.0, 6.0
        assert model.bucket_size(c, rtt, n) == pytest.approx(
            c * model.token_period(c, rtt, n)
        )

    def test_eq_iv3_increase_factor(self):
        # N' = (1 + 2/(3 sqrt n)) N
        c, rtt, n = 30.0, 12.0, 9.0
        base = model.bucket_size(c, rtt, n)
        assert model.increased_bucket_size(c, rtt, n) == pytest.approx(
            base * (1.0 + 2.0 / 9.0)
        )

    def test_increase_factor_from_sigma_mu(self):
        # the (1 + eps sigma/mu) definition must match the closed form
        n, w = 16.0, 10.0
        mu, sigma = model.aggregate_request_stats(w, n)
        factor = 1.0 + model.EPSILON * sigma / mu
        assert factor == pytest.approx(1.0 + 2.0 / (3.0 * math.sqrt(n)))

    def test_synchronized_bucket_four_thirds(self):
        c, rtt, n = 30.0, 12.0, 6.0
        assert model.synchronized_bucket_size(c, rtt, n) == pytest.approx(
            model.bucket_size(c, rtt, n) * 4.0 / 3.0
        )

    def test_reference_mtd(self):
        assert model.reference_mtd(5.0, 8.0) == 40.0


class TestDropRatioModel:
    def test_gamma_formula(self):
        assert model.drop_ratio(10.0) == pytest.approx(8.0 / 360.0)

    def test_drop_ratio_decreases_with_window(self):
        assert model.drop_ratio(20.0) < model.drop_ratio(10.0)

    def test_window_from_drop_ratio_inverse(self):
        for w in (2.0, 7.5, 40.0):
            gamma = model.drop_ratio(w)
            assert model.window_from_drop_ratio(gamma) == pytest.approx(w)

    def test_flows_from_drop_rate_inverse(self):
        # forward: n flows on (C, RTT) produce delta; inverse recovers n
        c, rtt, n = 100.0, 12.0, 25.0
        w = model.peak_window(c, rtt, n)
        delta = model.drop_rate(c, w)
        assert model.flows_from_drop_rate(c, rtt, delta) == pytest.approx(n)

    def test_one_drop_per_epoch_consistency(self):
        # gamma * packets-per-epoch == 1 for a single flow
        w = 12.0
        packets_per_epoch = 3.0 / 8.0 * w * (w + 2.0)
        assert model.drop_ratio(w) * packets_per_epoch == pytest.approx(1.0)
