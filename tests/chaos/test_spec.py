"""Campaign spec layer: sampling determinism, validation, serialization."""

import pickle

import pytest

from repro.chaos import (
    AttackerSpec,
    CampaignSpec,
    FaultSpec,
    SloSpec,
    default_slo,
    sample_campaign,
    with_slo,
)
from repro.chaos.spec import SILENT_FAULT_KINDS, chaos_rng
from repro.errors import ConfigError


def small_spec(**overrides):
    base = dict(
        seed=1,
        simulator="packet",
        warmup_ticks=100,
        window_ticks=50,
        n_windows=4,
        faults=(FaultSpec(kind="router_restart", tick=160),),
        attackers=(AttackerSpec(kind="cbr", mutations=("rerandomize",)),),
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestSampling:
    def test_same_seed_and_index_samples_identical_specs(self):
        assert sample_campaign(11, 3) == sample_campaign(11, 3)

    def test_different_indices_diverge(self):
        specs = [sample_campaign(11, i) for i in range(6)]
        assert len(set(specs)) > 1

    def test_different_seeds_diverge(self):
        assert sample_campaign(1, 0) != sample_campaign(2, 0)

    def test_every_sampled_spec_validates(self):
        for i in range(20):
            sample_campaign(5, i, simulator="both").validate()

    def test_sampled_faults_leave_judgeable_windows(self):
        """Fault ticks stay clear of the first and last windows so the
        floor and recovery oracles always have windows to judge."""
        for i in range(20):
            spec = sample_campaign(9, i, simulator="both")
            first_stop = spec.window_bounds(0)[1]
            for fault in spec.faults:
                assert fault.tick >= first_stop
                assert fault.clear_tick() < spec.total_ticks

    def test_silent_kinds_excluded_by_default(self):
        kinds = set()
        for i in range(40):
            spec = sample_campaign(3, i, simulator="both")
            kinds.update(f.kind for f in spec.faults)
        assert not kinds & set(SILENT_FAULT_KINDS)

    def test_simulator_choice_is_honored(self):
        for sim in ("packet", "fluid"):
            assert sample_campaign(1, 0, simulator=sim).simulator == sim

    def test_unknown_simulator_rejected(self):
        with pytest.raises(ConfigError):
            sample_campaign(1, 0, simulator="quantum")

    def test_chaos_rng_is_deterministic(self):
        assert (
            chaos_rng(4, "x").random() == chaos_rng(4, "x").random()
        )


class TestValidation:
    def test_small_spec_is_valid(self):
        small_spec().validate()

    def test_fault_beyond_run_rejected(self):
        spec = small_spec(
            faults=(FaultSpec(kind="router_restart", tick=999),)
        )
        with pytest.raises(ConfigError):
            spec.validate()

    def test_negative_fault_tick_rejected(self):
        with pytest.raises(ConfigError):
            small_spec(
                faults=(FaultSpec(kind="router_restart", tick=-1),)
            ).validate()

    def test_windowed_fault_needs_duration(self):
        with pytest.raises(ConfigError):
            small_spec(
                faults=(FaultSpec(kind="link_flap", tick=160),)
            ).validate()

    def test_instant_fault_rejects_duration(self):
        with pytest.raises(ConfigError):
            small_spec(
                faults=(
                    FaultSpec(kind="router_restart", tick=160, duration=5),
                )
            ).validate()

    def test_fluid_fault_kind_rejected_on_packet(self):
        with pytest.raises(ConfigError):
            small_spec(
                faults=(
                    FaultSpec(kind="link_degrade", tick=160, duration=10),
                )
            ).validate()

    def test_unknown_mutation_rejected(self):
        with pytest.raises(ConfigError):
            small_spec(
                attackers=(AttackerSpec(kind="cbr", mutations=("warp",)),)
            ).validate()

    def test_shrew_mutation_rejected_on_cbr(self):
        with pytest.raises(ConfigError):
            small_spec(
                attackers=(AttackerSpec(kind="cbr", mutations=("rephase",)),)
            ).validate()

    def test_shrew_needs_period(self):
        with pytest.raises(ConfigError):
            small_spec(
                attackers=(AttackerSpec(kind="shrew", period_ticks=0),)
            ).validate()

    def test_slo_floor_bounds(self):
        with pytest.raises(ConfigError):
            small_spec(slo=SloSpec(floor=1.5)).validate()

    def test_slo_sanitize_mode_checked(self):
        with pytest.raises(ConfigError):
            small_spec(slo=SloSpec(sanitize="paranoid")).validate()

    def test_window_bounds_tile_the_run(self):
        spec = small_spec()
        stops = [spec.window_bounds(i) for i in range(spec.n_windows)]
        assert stops[0][0] == spec.warmup_ticks
        assert stops[-1][1] == spec.total_ticks
        for (_, stop), (start, _) in zip(stops, stops[1:]):
            assert stop == start


class TestSerialization:
    def test_dict_round_trip_is_identity(self):
        spec = sample_campaign(13, 2, simulator="both")
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_preserves_tuple_types(self):
        spec = CampaignSpec.from_dict(small_spec().to_dict())
        assert isinstance(spec.faults, tuple)
        assert isinstance(spec.attackers, tuple)
        assert isinstance(spec.attackers[0].mutations, tuple)

    def test_malformed_dict_raises_config_error(self):
        data = small_spec().to_dict()
        del data["simulator"]
        with pytest.raises(ConfigError):
            CampaignSpec.from_dict(data)

    def test_specs_are_picklable(self):
        spec = sample_campaign(13, 2)
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_with_slo_overrides_only_given_fields(self):
        spec = small_spec()
        bumped = with_slo(spec, floor=0.9)
        assert bumped.slo.floor == 0.9
        assert bumped.slo.epsilon == spec.slo.epsilon
        assert bumped.faults == spec.faults

    def test_default_slo_honours_overrides(self):
        slo = default_slo("packet", floor=0.42, sanitize="record")
        assert slo.floor == 0.42
        assert slo.sanitize == "record"
