"""Campaign execution: determinism, both backends, the §IV-B lock."""

import pytest

from repro.chaos import (
    AttackerSpec,
    CampaignSpec,
    FaultSpec,
    SloSpec,
    default_slo,
    run_campaign,
)
from repro.chaos.campaign import execute_campaign
from repro.chaos.spec import FLUID_SHAPE, PACKET_SHAPE
from repro.errors import ConfigError


def packet_spec(**overrides):
    base = dict(
        seed=5,
        simulator="packet",
        warmup_ticks=150,
        window_ticks=100,
        n_windows=4,
        scale=0.05,
        faults=(FaultSpec(kind="router_restart", tick=300),),
        attackers=(
            AttackerSpec(
                kind="cbr", bots=2, rate_mbps=2.0, mutations=("rerandomize",)
            ),
        ),
        slo=SloSpec(),
    )
    base.update(overrides)
    return CampaignSpec(**base)


def fluid_spec(**overrides):
    base = dict(
        seed=5,
        simulator="fluid",
        warmup_ticks=120,
        window_ticks=60,
        n_windows=4,
        faults=(FaultSpec(kind="router_restart", tick=240),),
        attackers=(
            AttackerSpec(
                kind="fluid-bots", period_ticks=30, mutations=("rerandomize",)
            ),
        ),
        slo=SloSpec(floor=0.3),
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestDeterminism:
    def test_packet_execution_is_bit_identical(self):
        a = execute_campaign(packet_spec())
        b = execute_campaign(packet_spec())
        assert a.digest == b.digest
        assert a.windows == b.windows
        assert a.fault_log == b.fault_log

    def test_fluid_execution_is_bit_identical(self):
        a = execute_campaign(fluid_spec())
        b = execute_campaign(fluid_spec())
        assert a.digest == b.digest
        assert a.windows == b.windows

    def test_replay_slo_passes_on_both_backends(self):
        for spec in (packet_spec(), fluid_spec()):
            result = run_campaign(spec, verify_replay=True)
            assert not result.report.violates("replay"), spec.simulator

    def test_different_seeds_change_the_digest(self):
        assert (
            execute_campaign(packet_spec(seed=5)).digest
            != execute_campaign(packet_spec(seed=6)).digest
        )


class TestExecution:
    def test_scheduled_faults_fire_and_are_logged(self):
        m = execute_campaign(packet_spec())
        assert [t for t, _ in m.fault_log] == [300]

    def test_windows_cover_the_measurement_region(self):
        spec = packet_spec()
        m = execute_campaign(spec)
        assert len(m.windows) == spec.n_windows
        for i, w in enumerate(m.windows):
            assert (w.start, w.stop) == spec.window_bounds(i)
            assert 0.0 <= w.legit_share <= 1.1  # small queueing overshoot

    def test_link_flap_reroutes_and_recovers(self):
        spec = packet_spec(
            faults=(FaultSpec(kind="link_flap", tick=300, duration=60),)
        )
        m = execute_campaign(spec)
        assert [name for _, name in m.fault_log] == [
            "link-down root.0->root",
            "link-up root.0->root",
        ]
        result = run_campaign(spec, verify_replay=False)
        assert not result.report.violates("floor")

    def test_sanitizer_off_skips_installation(self):
        spec = packet_spec(slo=SloSpec(sanitize="off"))
        m = execute_campaign(spec)
        assert m.sanitizer_violations == 0

    def test_counter_corruption_is_caught_by_the_sanitizer_slo(self):
        spec = packet_spec(
            faults=(FaultSpec(kind="counter_corruption", tick=300),)
        )
        result = run_campaign(spec, verify_replay=False)
        assert result.measurements.sanitizer_violations > 0
        assert result.report.violates("sanitizer")

    def test_unvalidated_spec_is_rejected(self):
        spec = packet_spec(
            faults=(FaultSpec(kind="router_restart", tick=10_000),)
        )
        with pytest.raises(ConfigError):
            execute_campaign(spec)

    def test_fluid_degrade_fault_depresses_then_recovers(self):
        spec = fluid_spec(
            faults=(
                FaultSpec(
                    kind="link_degrade", tick=240, duration=40, param=0.1
                ),
            )
        )
        m = execute_campaign(spec)
        assert [name for _, name in m.fault_log] == [
            "uplink-degrade",
            "uplink-restore",
        ]


class TestStrategyIndependenceLock:
    """Regression lock on the paper's §IV-B claim: MTD identification is
    strategy-independent, so rate re-randomization does not let attackers
    push the legitimate share below the shipped floor."""

    def test_packet_rerandomizing_cbr_cannot_break_the_floor(self):
        spec = CampaignSpec(
            seed=2024,
            simulator="packet",
            scale=0.05,
            attackers=(
                AttackerSpec(
                    kind="cbr",
                    bots=4,
                    rate_mbps=2.5,
                    mutations=("rerandomize",),
                ),
                AttackerSpec(
                    kind="cbr",
                    bots=4,
                    rate_mbps=2.5,
                    mutations=("rerandomize", "churn"),
                ),
            ),
            slo=default_slo("packet"),
            **PACKET_SHAPE,
        )
        result = run_campaign(spec, verify_replay=False)
        assert not result.report.violates("floor"), result.report.rows()

    def test_fluid_rate_randomizer_cannot_break_the_floor(self):
        spec = CampaignSpec(
            seed=2024,
            simulator="fluid",
            attackers=(
                AttackerSpec(
                    kind="fluid-bots",
                    period_ticks=30,
                    mutations=("rerandomize",),
                ),
            ),
            slo=default_slo("fluid"),
            **FLUID_SHAPE,
        )
        result = run_campaign(spec, verify_replay=False)
        assert not result.report.violates("floor"), result.report.rows()
