"""Delta-debugging shrinker: convergence, 1-minimality, stable artifacts.

The seeded fixture was calibrated empirically: with the cbr squad present
the judged legit share bottoms out near 0.835, without it the share stays
above 0.994, so a floor of 0.95 makes exactly the squad-retaining specs
violate.  The shrinker must therefore drop the fault and strip the
mutation but keep the squad.
"""

import json

import pytest

from repro.chaos import (
    AttackerSpec,
    CampaignSpec,
    FaultSpec,
    SloSpec,
    dump_artifact,
    load_artifact,
    replay_artifact,
    run_campaign,
    shrink_campaign,
    with_slo,
    write_artifact,
)
from repro.chaos.artifact import artifact_dict
from repro.chaos.shrink import _candidates
from repro.errors import ConfigError

FLOOR = 0.95


@pytest.fixture(scope="module")
def violating_spec():
    base = CampaignSpec(
        seed=5,
        simulator="packet",
        warmup_ticks=150,
        window_ticks=100,
        n_windows=4,
        scale=0.05,
        faults=(FaultSpec(kind="router_restart", tick=300),),
        attackers=(
            AttackerSpec(
                kind="cbr", bots=2, rate_mbps=2.0, mutations=("rerandomize",)
            ),
        ),
        slo=SloSpec(),
    )
    return with_slo(base, floor=FLOOR)


@pytest.fixture(scope="module")
def shrunk(violating_spec):
    result = shrink_campaign(violating_spec, "floor")
    assert result is not None
    return result


class TestShrinking:
    def test_fixture_violates_the_floor(self, violating_spec):
        report = run_campaign(violating_spec, verify_replay=False).report
        assert report.violates("floor")

    def test_minimal_spec_keeps_only_the_bare_squad(self, shrunk):
        assert shrunk.minimal.faults == ()
        assert len(shrunk.minimal.attackers) == 1
        assert shrunk.minimal.attackers[0].mutations == ()

    def test_minimal_spec_still_violates(self, shrunk):
        assert shrunk.final.report.violates("floor")

    def test_minimal_spec_is_one_minimal(self, shrunk):
        """No single-edit reduction of the minimal spec still violates —
        the defining property the shrinker promises by construction,
        re-checked here by brute force."""
        for _label, candidate in _candidates(shrunk.minimal):
            report = run_campaign(candidate, verify_replay=False).report
            assert not report.violates("floor"), _label

    def test_removed_counts_the_edits(self, shrunk):
        assert shrunk.removed == len(shrunk.steps)
        assert len(shrunk.steps) >= 2  # fault dropped + mutation stripped

    def test_trial_budget_is_respected(self, violating_spec):
        result = shrink_campaign(violating_spec, "floor", max_trials=1)
        assert result.trials <= 1


class TestArtifacts:
    def test_independent_shrinks_produce_identical_artifacts(
        self, violating_spec, shrunk
    ):
        again = shrink_campaign(violating_spec, "floor")
        assert dump_artifact(again) == dump_artifact(shrunk)

    def test_artifact_is_canonical_json(self, shrunk):
        text = dump_artifact(shrunk)
        data = json.loads(text)
        assert text == json.dumps(data, sort_keys=True, indent=2) + "\n"
        assert data["format"] == "repro-chaos-reproducer"
        assert data["slo"] == "floor"

    def test_round_trip_and_replay(self, shrunk, tmp_path):
        path = tmp_path / "repro.json"
        write_artifact(shrunk, path)
        data = load_artifact(path)
        assert data == artifact_dict(shrunk)
        outcome = replay_artifact(path)
        assert outcome.ok
        assert outcome.violation_reproduced
        assert outcome.digest_matched

    def test_load_rejects_malformed_artifacts(self, shrunk, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(ConfigError):
            load_artifact(missing)

        garbage = tmp_path / "garbage.json"
        garbage.write_text("{not json")
        with pytest.raises(ConfigError):
            load_artifact(garbage)

        wrong = tmp_path / "wrong.json"
        data = artifact_dict(shrunk)
        data["format"] = "something-else"
        wrong.write_text(json.dumps(data))
        with pytest.raises(ConfigError):
            load_artifact(wrong)
