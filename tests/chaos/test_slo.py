"""SLO oracle layer: pure-arithmetic verdicts over synthetic windows."""

from repro.chaos import (
    AttackerSpec,
    CampaignSpec,
    FaultSpec,
    SloSpec,
    WindowShare,
    evaluate_slos,
)
from repro.chaos.slo import (
    SLO_NAMES,
    impact_interval,
    recovery_deadline,
    settle_ticks,
)


def spec_with(faults=(), slo=None):
    return CampaignSpec(
        seed=0,
        simulator="packet",
        warmup_ticks=100,
        window_ticks=50,
        n_windows=6,
        faults=tuple(faults),
        attackers=(AttackerSpec(kind="cbr"),),
        slo=slo or SloSpec(floor=0.5, epsilon=0.1),
    )


def windows(shares):
    return [
        WindowShare(index=i, start=100 + 50 * i, stop=150 + 50 * i,
                    legit_share=s)
        for i, s in enumerate(shares)
    ]


class TestFloorOracle:
    def test_all_windows_above_floor_pass(self):
        report = evaluate_slos(spec_with(), windows([0.9] * 6), 0)
        assert not report.violates("floor")

    def test_one_window_below_floor_fails(self):
        report = evaluate_slos(
            spec_with(), windows([0.9, 0.9, 0.3, 0.9, 0.9, 0.9]), 0
        )
        assert report.violates("floor")
        assert report.violated().slo == "floor"

    def test_fault_impacted_windows_are_excused(self):
        # the fault at 210 clears instantly; its impact interval extends
        # one settle window, excusing windows 2 and 3 ([200,250),[250,300))
        spec = spec_with(faults=[FaultSpec(kind="router_restart", tick=210)])
        shares = [0.9, 0.9, 0.1, 0.1, 0.9, 0.9]
        report = evaluate_slos(spec, windows(shares), 0)
        assert not report.violates("floor")

    def test_low_share_outside_impact_interval_still_fails(self):
        spec = spec_with(faults=[FaultSpec(kind="router_restart", tick=210)])
        shares = [0.9, 0.9, 0.1, 0.1, 0.9, 0.1]
        report = evaluate_slos(spec, windows(shares), 0)
        assert report.violates("floor")

    def test_impact_interval_covers_fault_window_plus_settle(self):
        spec = spec_with()
        fault = FaultSpec(kind="link_flap", tick=200, duration=30)
        start, stop = impact_interval(fault, spec)
        assert start == 200
        assert stop == 230 + settle_ticks(spec)


class TestRecoveryOracle:
    def test_no_faults_skips(self):
        report = evaluate_slos(spec_with(), windows([0.9] * 6), 0)
        verdict = [v for v in report.verdicts if v.slo == "recovery"][0]
        assert verdict.ok and "skipped" in verdict.detail

    def test_recovered_share_passes(self):
        spec = spec_with(faults=[FaultSpec(kind="router_restart", tick=150)])
        # deadline = 150 + 50 (settle) + 150 (slack) = 350 -> window 5
        shares = [0.9, 0.2, 0.2, 0.5, 0.7, 0.88]
        report = evaluate_slos(spec, windows(shares), 0)
        assert not report.violates("recovery")

    def test_depressed_share_after_deadline_fails(self):
        spec = spec_with(faults=[FaultSpec(kind="router_restart", tick=150)])
        shares = [0.9, 0.2, 0.2, 0.5, 0.7, 0.5]
        report = evaluate_slos(spec, windows(shares), 0)
        assert report.violates("recovery")

    def test_deadline_formula(self):
        spec = spec_with(
            faults=[FaultSpec(kind="link_flap", tick=200, duration=40)]
        )
        assert (
            recovery_deadline(spec)
            == 240 + settle_ticks(spec) + spec.slo.recovery_slack_ticks
        )

    def test_fault_too_late_for_any_post_window_skips(self):
        spec = spec_with(faults=[FaultSpec(kind="router_restart", tick=390)])
        report = evaluate_slos(spec, windows([0.9] * 6), 0)
        verdict = [v for v in report.verdicts if v.slo == "recovery"][0]
        assert verdict.ok and "skipped" in verdict.detail


class TestSanitizerOracle:
    def test_strict_mode_fails_on_violations(self):
        report = evaluate_slos(spec_with(), windows([0.9] * 6), 3)
        assert report.violates("sanitizer")

    def test_strict_mode_passes_clean(self):
        report = evaluate_slos(spec_with(), windows([0.9] * 6), 0)
        assert not report.violates("sanitizer")

    def test_record_mode_reports_without_failing(self):
        spec = spec_with(slo=SloSpec(floor=0.5, sanitize="record"))
        report = evaluate_slos(spec, windows([0.9] * 6), 3)
        assert not report.violates("sanitizer")

    def test_off_mode_skips(self):
        spec = spec_with(slo=SloSpec(floor=0.5, sanitize="off"))
        report = evaluate_slos(spec, windows([0.9] * 6), 99)
        assert not report.violates("sanitizer")


class TestReplayOracle:
    def test_unverified_skips(self):
        report = evaluate_slos(spec_with(), windows([0.9] * 6), 0, None)
        assert not report.violates("replay")

    def test_matching_digest_passes(self):
        report = evaluate_slos(spec_with(), windows([0.9] * 6), 0, True)
        assert not report.violates("replay")

    def test_diverging_digest_fails(self):
        report = evaluate_slos(spec_with(), windows([0.9] * 6), 0, False)
        assert report.violates("replay")


class TestReport:
    def test_violated_returns_first_failure_in_catalog_order(self):
        report = evaluate_slos(
            spec_with(), windows([0.1] * 6), 5, False
        )
        assert report.violated().slo == "floor"
        assert not report.ok

    def test_rows_cover_all_slos(self):
        report = evaluate_slos(spec_with(), windows([0.9] * 6), 0)
        assert [r[0] for r in report.rows()] == list(SLO_NAMES)


class TestBoundedStateOracle:
    def bounded_spec(self, floor=0.3, max_paths=None, faults=()):
        return CampaignSpec(
            seed=0,
            simulator="packet",
            warmup_ticks=100,
            window_ticks=50,
            n_windows=6,
            faults=tuple(faults),
            attackers=(AttackerSpec(kind="churn-flood", period_ticks=25),),
            slo=SloSpec(floor=0.5, bounded_floor=floor),
            state_backend="sketch",
            max_tracked_paths=max_paths,
        )

    def test_no_bounded_floor_skips(self):
        report = evaluate_slos(spec_with(), windows([0.9] * 6), 0)
        verdict = [v for v in report.verdicts if v.slo == "bounded_state"][0]
        assert verdict.ok and "skipped" in verdict.detail

    def test_share_above_bounded_floor_passes(self):
        report = evaluate_slos(
            self.bounded_spec(),
            windows([0.6] * 6),
            0,
            eviction_stats={"memory-pressure": 500},
            tracked_paths_peak=64,
        )
        assert not report.violates("bounded_state")

    def test_share_below_bounded_floor_fails(self):
        report = evaluate_slos(
            self.bounded_spec(floor=0.4),
            windows([0.6, 0.6, 0.1, 0.6, 0.6, 0.6]),
            0,
            eviction_stats={"memory-pressure": 500},
        )
        assert report.violates("bounded_state")

    def test_budget_exceeded_fails_even_with_good_share(self):
        report = evaluate_slos(
            self.bounded_spec(max_paths=64),
            windows([0.9] * 6),
            0,
            tracked_paths_peak=65,
        )
        assert report.violates("bounded_state")
        verdict = [v for v in report.verdicts if v.slo == "bounded_state"][0]
        assert "EXCEEDED" in verdict.detail

    def test_peak_within_budget_passes(self):
        report = evaluate_slos(
            self.bounded_spec(max_paths=64),
            windows([0.9] * 6),
            0,
            tracked_paths_peak=64,
        )
        assert not report.violates("bounded_state")

    def test_fault_impacted_windows_are_excused(self):
        spec = self.bounded_spec(
            floor=0.4,
            faults=[FaultSpec(kind="router_restart", tick=210)],
        )
        shares = [0.9, 0.9, 0.1, 0.1, 0.9, 0.9]
        report = evaluate_slos(spec, windows(shares), 0)
        assert not report.violates("bounded_state")
