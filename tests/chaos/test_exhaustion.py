"""Exhaustion campaigns: spec extension, serialization, sampler, sweep."""

import pytest

from repro.chaos import ChaosOptions, CampaignSpec, build_chaos_units
from repro.chaos.spec import (
    DEFAULT_BOUNDED_FLOOR,
    SAMPLED_PACKET_ATTACKER_KINDS,
    AttackerSpec,
    SloSpec,
    exhaustion_campaign,
    sample_campaign,
)
from repro.errors import ConfigError


def base_spec(**overrides):
    base = dict(
        seed=1,
        simulator="packet",
        warmup_ticks=100,
        window_ticks=50,
        n_windows=4,
        attackers=(AttackerSpec(kind="cbr"),),
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestSpecExtension:
    def test_churn_flood_requires_period(self):
        spec = base_spec(attackers=(AttackerSpec(kind="churn-flood"),))
        with pytest.raises(ConfigError):
            spec.validate()

    def test_churn_flood_with_period_validates(self):
        base_spec(
            attackers=(AttackerSpec(kind="churn-flood", period_ticks=25),)
        ).validate()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            base_spec(state_backend="bloom").validate()

    def test_fluid_sketch_combination_rejected(self):
        with pytest.raises(ConfigError):
            base_spec(simulator="fluid", state_backend="sketch").validate()

    def test_bad_max_tracked_paths_rejected(self):
        with pytest.raises(ConfigError):
            base_spec(max_tracked_paths=0).validate()

    def test_bounded_floor_range_checked(self):
        with pytest.raises(ConfigError):
            base_spec(slo=SloSpec(bounded_floor=1.5)).validate()


class TestSerializationCompat:
    def test_default_spec_dict_omits_new_keys(self):
        # digest stability: an exact-mode spec serializes exactly as the
        # seed code serialized it
        d = base_spec().to_dict()
        assert "state_backend" not in d
        assert "max_tracked_paths" not in d
        assert "bounded_floor" not in d["slo"]

    def test_old_shape_dict_loads(self):
        d = base_spec().to_dict()
        spec = CampaignSpec.from_dict(d)
        assert spec.state_backend == "exact"
        assert spec.max_tracked_paths is None
        assert spec.slo.bounded_floor is None

    def test_sketch_spec_round_trips(self):
        spec = base_spec(
            attackers=(AttackerSpec(kind="churn-flood", period_ticks=25),),
            state_backend="sketch",
            max_tracked_paths=64,
            slo=SloSpec(bounded_floor=0.2),
        )
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_generic_sampler_never_emits_churn_flood(self):
        # seed-pinned sweeps must keep sampling from the historical pool
        assert "churn-flood" not in SAMPLED_PACKET_ATTACKER_KINDS
        for index in range(20):
            spec = sample_campaign(3, index, simulator="packet")
            assert all(a.kind != "churn-flood" for a in spec.attackers)


class TestExhaustionCampaign:
    def test_deterministic(self):
        assert exhaustion_campaign(5, 2) == exhaustion_campaign(5, 2)

    def test_indices_diverge(self):
        specs = [exhaustion_campaign(5, i) for i in range(6)]
        assert len(set(specs)) > 1

    def test_shape(self):
        spec = exhaustion_campaign(0, 0, max_tracked_paths=48)
        spec.validate()
        assert spec.simulator == "packet"
        assert spec.state_backend == "sketch"
        assert spec.max_tracked_paths == 48
        assert spec.slo.bounded_floor == DEFAULT_BOUNDED_FLOOR
        assert any(a.kind == "churn-flood" for a in spec.attackers)
        assert not spec.faults

    def test_exact_backend_variant(self):
        spec = exhaustion_campaign(0, 0, state_backend="exact")
        spec.validate()
        assert spec.state_backend == "exact"


class TestSweepWiring:
    def test_exhaustion_units_appended(self):
        units = build_chaos_units(
            ChaosOptions(campaigns=2, exhaustion=2, max_tracked_paths=64)
        )
        names = [name for name, _ in units]
        assert names == [
            "campaign-000",
            "campaign-001",
            "exhaustion-000",
            "exhaustion-001",
        ]
        for name, job in units[2:]:
            assert job.spec.state_backend == "sketch"
            assert job.spec.max_tracked_paths == 64

    def test_zero_exhaustion_is_the_default(self):
        units = build_chaos_units(ChaosOptions(campaigns=2))
        assert len(units) == 2

    def test_negative_exhaustion_rejected(self):
        with pytest.raises(ConfigError):
            ChaosOptions(exhaustion=-1).validate()
