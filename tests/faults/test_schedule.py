"""FaultSchedule: event semantics, validation, installation."""

import pytest

from repro.errors import ConfigError
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.net.engine import Engine
from repro.net.topology import Topology


def tiny_engine(seed=5):
    topo = Topology()
    topo.add_duplex_link("a", "b", capacity=2.0, buffer=10)
    return Engine(topo, seed=seed)


class TestFaultEvent:
    def test_one_shot_fires_exactly_once(self):
        event = FaultEvent(tick=7, injector=lambda *a: None, name="x")
        fired = [t for t in range(20) if event.fires_at(t)]
        assert fired == [7]

    def test_recurring_fires_on_period(self):
        event = FaultEvent(
            tick=4, injector=lambda *a: None, name="x", period=3, until=14
        )
        fired = [t for t in range(20) if event.fires_at(t)]
        assert fired == [4, 7, 10, 13]

    def test_recurring_without_until_keeps_firing(self):
        event = FaultEvent(
            tick=0, injector=lambda *a: None, name="x", period=10
        )
        assert event.fires_at(1000)


class TestDirectConstructionValidation:
    """Events built directly (not via the builders) — e.g. by spec
    interpreters like repro.chaos — must enforce the same invariants."""

    def test_negative_tick_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent(tick=-1, injector=lambda *a: None, name="x")

    def test_non_callable_injector_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent(tick=0, injector="boom", name="x")

    def test_zero_period_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent(tick=0, injector=lambda *a: None, name="x", period=0)

    def test_until_not_after_start_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent(
                tick=5, injector=lambda *a: None, name="x",
                period=2, until=5,
            )


class TestValidation:
    def test_negative_tick_rejected(self):
        with pytest.raises(ConfigError):
            FaultSchedule().at(-1, lambda *a: None)

    def test_non_callable_injector_rejected(self):
        with pytest.raises(ConfigError):
            FaultSchedule().at(3, "not-a-function")

    def test_bad_period_rejected(self):
        with pytest.raises(ConfigError):
            FaultSchedule().every(0, lambda *a: None)

    def test_until_before_start_rejected(self):
        with pytest.raises(ConfigError):
            FaultSchedule().every(5, lambda *a: None, start=10, until=10)

    def test_flap_up_must_follow_down(self):
        with pytest.raises(ConfigError):
            FaultSchedule().link_flap("a", "b", down_tick=5, up_tick=5)

    def test_corruption_fraction_bounds(self):
        with pytest.raises(ConfigError):
            FaultSchedule().corrupt_state("a", "b", 3, fraction=1.5)

    def test_negative_jitter_bound_rejected(self):
        with pytest.raises(ConfigError):
            FaultSchedule().clock_jitter("a", "b", 3, max_offset=-1)


class TestInstall:
    def test_injector_fires_at_scheduled_tick_with_rng(self):
        engine = tiny_engine()
        seen = []
        schedule = FaultSchedule().at(
            3, lambda host, tick, rng: seen.append((host, tick, rng.random())),
            name="probe",
        )
        schedule.install(engine)
        engine.run(6)
        assert len(seen) == 1
        host, tick, draw = seen[0]
        assert host is engine and tick == 3
        assert 0.0 <= draw < 1.0
        assert schedule.log == [(3, "probe")]

    def test_recurring_injector_logged_every_period(self):
        engine = tiny_engine()
        schedule = FaultSchedule().every(
            2, lambda *a: None, start=1, until=8, name="beat"
        )
        schedule.install(engine)
        engine.run(10)
        assert [t for t, _ in schedule.log] == [1, 3, 5, 7]

    def test_chaining_returns_schedule(self):
        schedule = FaultSchedule()
        assert schedule.at(1, lambda *a: None) is schedule
        assert schedule.every(2, lambda *a: None) is schedule

    def test_schedule_rng_is_seed_derived(self):
        draws = []
        for _ in range(2):
            engine = tiny_engine(seed=5)
            schedule = FaultSchedule().at(
                1, lambda h, t, rng: draws.append(rng.random())
            )
            schedule.install(engine)
            engine.run(3)
        assert draws[0] == draws[1]
