"""Same (scenario, seed) => identical outcomes, with or without faults."""

from repro.core.config import FLocConfig
from repro.core.router import FLocPolicy
from repro.faults import FaultSchedule
from repro.net.engine import Engine, LinkMonitor
from repro.net.topology import Topology
from repro.tcp.source import TcpSource
from repro.traffic.cbr import CbrSource


def build(seed=17):
    """Flooded bottleneck with a backup path for the h0 uplink."""
    topo = Topology()
    topo.add_duplex_link("h0", "rA", capacity=None)
    topo.add_duplex_link("h1", "rB", capacity=None)
    topo.add_duplex_link("bot", "rB", capacity=None)
    topo.add_duplex_link("rA", "r0", capacity=None)
    topo.add_duplex_link("rB", "r0", capacity=None)
    topo.add_duplex_link("rA", "rB", capacity=None)  # backup cross-link
    topo.add_duplex_link("r0", "srv", capacity=4.0, buffer=50)
    topo.set_policy("r0", "srv", FLocPolicy(FLocConfig()))
    engine = Engine(topo, seed=seed)
    for host, pid in (("h0", (1, 5)), ("h1", (2, 5))):
        flow = engine.open_flow(host, "srv", path_id=pid)
        engine.add_source(TcpSource(flow))
    bot_flow = engine.open_flow("bot", "srv", path_id=(2, 5), is_attack=True)
    engine.add_source(CbrSource(bot_flow, rate=8.0))
    return engine


def faulty_schedule():
    schedule = FaultSchedule()
    schedule.router_restart("r0", "srv", tick=250)
    schedule.link_flap("rA", "r0", down_tick=300, up_tick=450)
    schedule.corrupt_state("r0", "srv", tick=500, fraction=0.5)
    schedule.clock_jitter("r0", "srv", tick=550, max_offset=9)
    return schedule


def run_once(with_faults: bool):
    engine = build()
    monitor = engine.add_monitor("r0", "srv", LinkMonitor(record_series=True))
    log = None
    if with_faults:
        schedule = faulty_schedule().install(engine)
        log = schedule.log
    engine.run(700)
    return monitor, log


class TestDeterminism:
    def test_identical_without_faults(self):
        m1, _ = run_once(False)
        m2, _ = run_once(False)
        assert m1.service_counts == m2.service_counts
        assert m1.drop_counts == m2.drop_counts
        assert m1.series == m2.series

    def test_identical_with_fault_schedule(self):
        m1, log1 = run_once(True)
        m2, log2 = run_once(True)
        assert log1 == log2
        assert m1.service_counts == m2.service_counts
        assert m1.drop_counts == m2.drop_counts
        assert m1.series == m2.series

    def test_faults_actually_perturb_the_run(self):
        clean, _ = run_once(False)
        faulty, log = run_once(True)
        assert [t for t, _ in log] == [250, 300, 450, 500, 550]
        assert clean.service_counts != faulty.service_counts

    def test_different_seed_diverges(self):
        e1, e2 = build(seed=17), build(seed=18)
        m1 = e1.add_monitor("r0", "srv", LinkMonitor())
        m2 = e2.add_monitor("r0", "srv", LinkMonitor())
        e1.run(400)
        e2.run(400)
        assert m1.service_counts != m2.service_counts
