"""FLocPolicy fault behaviour: snapshot/restore, restart warm-up, LRU."""

import random

import pytest

from repro.core.config import FLocConfig
from repro.core.router import FLocPolicy
from repro.errors import SimulationError
from repro.net.engine import Engine, LinkMonitor
from repro.net.topology import Topology
from repro.tcp.source import TcpSource
from repro.traffic.cbr import CbrSource


def flooded_engine(seed=21, capacity=3.0, config=None):
    topo = Topology()
    for host in ("a", "b", "bot"):
        topo.add_duplex_link(host, "r0", capacity=None)
    topo.add_duplex_link("r0", "srv", capacity=capacity, buffer=60)
    policy = FLocPolicy(config or FLocConfig())
    topo.set_policy("r0", "srv", policy)
    engine = Engine(topo, seed=seed)
    for host, pid in (("a", (1, 9)), ("b", (2, 9))):
        flow = engine.open_flow(host, "srv", path_id=pid)
        engine.add_source(TcpSource(flow))
    bot_flow = engine.open_flow("bot", "srv", path_id=(1, 9), is_attack=True)
    engine.add_source(CbrSource(bot_flow, rate=6.0))
    return engine, policy


class TestSnapshotRestore:
    def test_round_trip_preserves_admission_decisions(self):
        """Restoring a checkpoint onto a wrecked twin policy reproduces the
        original run's admission decisions exactly (acceptance criterion)."""
        T, T2 = 400, 300
        runs = []
        for wreck in (False, True):
            engine, policy = flooded_engine()
            monitor = engine.add_monitor(
                "r0", "srv", LinkMonitor(start_tick=T, stop_tick=T + T2)
            )
            engine.run(T)
            snap = policy.snapshot()
            if wreck:
                policy.restart(engine.tick)  # wipe everything
                policy.corrupt_state(1.0, random.Random(0))
                policy.restore(snap)  # ... and bring it all back
            engine.run(T2)
            runs.append((monitor, policy))
        (m_ref, p_ref), (m_restored, p_restored) = runs
        assert m_ref.service_counts == m_restored.service_counts
        assert m_ref.drop_counts == m_restored.drop_counts
        assert p_ref.drop_stats == p_restored.drop_stats

    def test_snapshot_is_independent_deep_copy(self):
        engine, policy = flooded_engine()
        engine.run(300)
        snap = policy.snapshot()
        tracked_before = set(policy.paths)
        policy.restart(engine.tick)
        assert not policy.paths  # live state gone ...
        policy.restore(snap)
        assert set(policy.paths) == tracked_before  # ... snapshot intact

    def test_snapshot_before_attach_is_an_error(self):
        policy = FLocPolicy(FLocConfig())
        with pytest.raises(SimulationError):
            policy.snapshot()
        with pytest.raises(SimulationError):
            policy.restore({})


class TestRestartWarmup:
    def test_warmup_window_expires(self):
        cfg = FLocConfig(restart_warmup_ticks=50)
        engine, policy = flooded_engine(config=cfg)
        engine.run(300)
        policy.restart(engine.tick)
        assert policy.in_warmup
        engine.run(49)
        assert policy.in_warmup
        engine.run(60)
        assert not policy.in_warmup

    def test_warmup_until_anchors_the_deadline(self):
        cfg = FLocConfig(restart_warmup_ticks=50)
        engine, policy = flooded_engine(config=cfg)
        engine.run(100)
        assert policy.warmup_until is None
        restart_tick = engine.tick
        policy.restart(restart_tick)
        assert policy.warmup_until == restart_tick + 50
        engine.run(60)
        assert policy.warmup_until is None

    def test_state_reconverges_after_restart(self):
        engine, policy = flooded_engine(
            config=FLocConfig(restart_warmup_ticks=50)
        )
        engine.run(400)
        policy.restart(engine.tick)
        assert not policy.paths
        engine.run(400)
        # live traffic regenerated the per-path state
        assert (1, 9) in policy.paths and (2, 9) in policy.paths

    def test_warmup_does_not_starve_legit_flows(self):
        engine, policy = flooded_engine(
            config=FLocConfig(restart_warmup_ticks=200)
        )
        engine.run(300)
        policy.restart(engine.tick)
        monitor = engine.add_monitor("r0", "srv", LinkMonitor())
        engine.run(150)  # entirely inside the warm-up window
        legit_ids = {
            f.flow_id for f in engine.flows.values() if not f.is_attack
        }
        legit_served = sum(
            c for fid, c in monitor.service_counts.items() if fid in legit_ids
        )
        assert legit_served > 0


class TestBoundedPathState:
    def test_lru_eviction_caps_tracked_paths(self):
        cfg = FLocConfig(max_tracked_paths=2)
        topo = Topology()
        for i in range(4):
            topo.add_duplex_link(f"h{i}", "r0", capacity=None)
        topo.add_duplex_link("r0", "srv", capacity=4.0, buffer=40)
        policy = FLocPolicy(cfg)
        topo.set_policy("r0", "srv", policy)
        engine = Engine(topo, seed=8)
        for i in range(4):
            flow = engine.open_flow(f"h{i}", "srv", path_id=(i, 9))
            # staggered starts so eviction order is well defined
            engine.add_source(TcpSource(flow, start_tick=i * 120))
        engine.run(600)
        assert len(policy.paths) <= 2

    def test_unbounded_by_default(self):
        engine, policy = flooded_engine()
        engine.run(400)
        assert policy.cfg.max_tracked_paths is None
        assert len(policy.paths) == 2


class TestCorruptionAndJitter:
    def test_partial_corruption_survivors_keep_state(self):
        engine, policy = flooded_engine()
        engine.run(400)
        before = set(policy.paths)
        # fraction 0 forgets nothing
        policy.corrupt_state(0.0, random.Random(1))
        assert set(policy.paths) == before

    def test_jittered_clock_still_refreshes_state(self):
        engine, policy = flooded_engine()
        engine.run(200)
        policy.jitter_clock(7)
        engine.run(400)
        # measurement machinery keeps running on the shifted phase
        assert policy.paths
        state = next(iter(policy.paths.values()))
        assert state.lambda_rate > 0.0
