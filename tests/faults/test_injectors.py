"""Injectors: link flaps with rerouting, policy hooks, fluid degradation."""

import random

import pytest

from repro.core.config import FLocConfig
from repro.core.router import FLocPolicy
from repro.errors import SimulationError
from repro.faults.injectors import (
    FluidLinkDegrade,
    LinkFlap,
    clock_jitter,
    router_restart,
    state_corruption,
)
from repro.inet.scenarios import build_internet_scenario
from repro.net.engine import Engine
from repro.net.topology import Topology
from repro.tcp.source import TcpSource


def diamond_engine(seed=9):
    """h -> r1 -> {top | bot} -> r2 -> srv, with the top path preferred."""
    topo = Topology()
    topo.add_duplex_link("h", "r1", capacity=None)
    topo.add_duplex_link("r1", "top", capacity=None)
    topo.add_duplex_link("top", "r2", capacity=None)
    topo.add_duplex_link("r1", "bot", capacity=None, delay=2)
    topo.add_duplex_link("bot", "r2", capacity=None, delay=2)
    topo.add_duplex_link("r2", "srv", capacity=5.0, buffer=40)
    return Engine(topo, seed=seed), topo


RNG = random.Random(0)


class TestLinkFlap:
    def test_down_reroutes_and_up_restores_original_routes(self):
        engine, topo = diamond_engine()
        flow = engine.open_flow("h", "srv", path_id=(1,))
        engine.add_source(TcpSource(flow))
        original = flow.route
        assert "top" in original

        flap = LinkFlap("r1", "top")
        engine.run(50)
        flap.down(engine, engine.tick, RNG)
        assert not topo.link("r1", "top").up
        assert "bot" in flow.route and "top" not in flow.route

        engine.run(50)
        flap.up(engine, engine.tick, RNG)
        assert topo.link("r1", "top").up
        assert flow.route == original

    def test_flow_without_alternative_black_holes(self):
        topo = Topology()
        topo.add_duplex_link("h", "r", capacity=None)
        topo.add_duplex_link("r", "srv", capacity=5.0, buffer=20)
        engine = Engine(topo, seed=1)
        flow = engine.open_flow("h", "srv", path_id=(1,))
        engine.add_source(TcpSource(flow))
        engine.run(20)
        delivered_before = topo.link("r", "srv").serviced_total

        flap = LinkFlap("r", "srv")
        flap.down(engine, engine.tick, RNG)
        engine.run(30)
        # nothing got through, the packets were dead-dropped, no crash
        assert topo.link("r", "srv").serviced_total == delivered_before
        assert topo.link("r", "srv").dropped_total > 0

        flap.up(engine, engine.tick, RNG)
        engine.run(60)
        assert topo.link("r", "srv").serviced_total > delivered_before

    def test_traffic_keeps_flowing_over_backup_path(self):
        engine, topo = diamond_engine()
        flow = engine.open_flow("h", "srv", path_id=(1,))
        engine.add_source(TcpSource(flow))
        engine.run(50)
        before = topo.link("r2", "srv").serviced_total
        flap = LinkFlap("r1", "top")
        flap.down(engine, engine.tick, RNG)
        engine.run(100)
        assert topo.link("r2", "srv").serviced_total > before


class TestPolicyInjectors:
    def attached_policy(self):
        topo = Topology()
        topo.add_duplex_link("h", "r", capacity=None)
        topo.add_duplex_link("r", "srv", capacity=4.0, buffer=30)
        policy = FLocPolicy(FLocConfig())
        topo.set_policy("r", "srv", policy)
        engine = Engine(topo, seed=2)
        flow = engine.open_flow("h", "srv", path_id=(1,))
        engine.add_source(TcpSource(flow))
        engine.run(100)
        return engine, policy

    def test_router_restart_enters_warmup(self):
        engine, policy = self.attached_policy()
        assert policy.paths and not policy.in_warmup
        router_restart("r", "srv")(engine, engine.tick, RNG)
        assert policy.in_warmup and not policy.paths

    def test_state_corruption_full_fraction_forgets_everything(self):
        engine, policy = self.attached_policy()
        assert policy.paths
        state_corruption("r", "srv", fraction=1.0)(engine, engine.tick, RNG)
        assert not policy.paths

    def test_clock_jitter_sets_bounded_offset(self):
        engine, policy = self.attached_policy()
        clock_jitter("r", "srv", max_offset=5)(engine, engine.tick, RNG)
        assert -5 <= policy._clock_offset <= 5

    def test_missing_policy_is_an_error(self):
        topo = Topology()
        topo.add_duplex_link("a", "b", capacity=1.0, buffer=5)
        engine = Engine(topo, seed=0)
        with pytest.raises(SimulationError):
            router_restart("a", "b")(engine, 0, RNG)


class TestFluidLinkDegrade:
    def scenario(self):
        return build_internet_scenario(
            n_as=60, n_legit_sources=100, n_legit_ases=20, n_bots=500,
            target_capacity=80.0, seed=4,
        )

    def test_down_scales_and_up_restores(self):
        scn = self.scenario()

        class Host:
            def __init__(self, scn):
                self.scn = scn

        host = Host(scn)
        original = float(scn.link_capacity[3])
        degrade = FluidLinkDegrade(3, factor=0.25)
        degrade.down(host, 0, RNG)
        assert scn.link_capacity[3] == pytest.approx(original * 0.25)
        # idempotent while active: does not compound
        degrade.down(host, 1, RNG)
        assert scn.link_capacity[3] == pytest.approx(original * 0.25)
        degrade.up(host, 2, RNG)
        assert scn.link_capacity[3] == pytest.approx(original)

    def test_negative_factor_rejected(self):
        with pytest.raises(SimulationError):
            FluidLinkDegrade(1, factor=-0.5)
