"""The robustness_faults experiment: completion + recovery criterion."""

import pytest

from repro.experiments.common import FunctionalSettings
from repro.experiments.robustness_faults import (
    PhaseBandwidth,
    run_robustness_faults,
)


@pytest.fixture(scope="module")
def result():
    settings = FunctionalSettings(
        scale=0.05, warmup_seconds=2.0, measure_seconds=6.0, seed=3
    )
    return run_robustness_faults(
        settings,
        packet_schemes=("floc",),
        fluid_strategies=("floc", "nd"),
    )


class TestRobustnessFaults:
    def test_completes_for_both_simulators(self, result):
        assert [r.simulator for r in result.packet] == ["packet"]
        assert [r.simulator for r in result.fluid] == ["fluid", "fluid"]

    def test_faults_fired_in_both_simulators(self, result):
        packet_names = {name for _, name in result.packet[0].fault_log}
        assert any("restart" in n for n in packet_names)
        assert any("link-down" in n for n in packet_names)
        assert any("link-up" in n for n in packet_names)
        fluid_names = {name for _, name in result.fluid[0].fault_log}
        assert "defense-restart" in fluid_names
        assert "uplink-degrade" in fluid_names and "uplink-restore" in fluid_names

    def test_floc_recovers_within_20_percent_packet(self, result):
        floc = result.packet[0]
        assert floc.pre > 0
        assert floc.recovery_ratio >= 0.8

    def test_floc_recovers_within_20_percent_fluid(self, result):
        floc = next(r for r in result.fluid if r.scheme == "floc")
        assert floc.pre > 0
        assert floc.recovery_ratio >= 0.8

    def test_faults_bite_during_window_fluid(self, result):
        floc = next(r for r in result.fluid if r.scheme == "floc")
        assert floc.during < floc.pre  # degradation is visible, not masked

    def test_rows_shape(self, result):
        rows = result.rows()
        assert len(rows) == 3
        assert all(len(row) == 6 for row in rows)

    def test_recovery_ratio_defined_for_zero_pre(self):
        entry = PhaseBandwidth(
            simulator="packet", scheme="x", pre=0.0, during=0.0, post=0.0
        )
        assert entry.recovery_ratio == 1.0
