"""Fluid simulator fault support: hooks, restart warm-up, determinism."""

import numpy as np
import pytest

from repro.faults import FaultSchedule, FluidLinkDegrade, fluid_restart
from repro.inet.scenarios import build_internet_scenario
from repro.inet.simulator import FluidSimulator


@pytest.fixture(scope="module")
def scenario():
    return build_internet_scenario(
        n_as=150, n_legit_sources=300, n_legit_ases=40, n_bots=3_000,
        target_capacity=150.0, seed=6,
    )


class TestHooks:
    def test_tick_hooks_fire_each_tick(self, scenario):
        sim = FluidSimulator(scenario, strategy="nd", seed=3)
        ticks = []
        sim.add_tick_hook(lambda s, t: ticks.append(t))
        sim.run(ticks=15, warmup=5)
        assert ticks == list(range(15))

    def test_spawn_rng_matches_engine_derivation(self, scenario):
        sim = FluidSimulator(scenario, strategy="nd", seed=3)
        a = sim.spawn_rng("faults")
        b = sim.spawn_rng("faults")
        assert a.random() == b.random()
        assert a is not b


class TestRestartDefense:
    def test_restart_wipes_floc_state_and_sets_warmup(self, scenario):
        sim = FluidSimulator(scenario, strategy="floc", seed=3)
        sim.run(ticks=80, warmup=40)
        assert sim.n_groups > 0
        sim.restart_defense(80, warmup_ticks=30)
        assert sim.n_groups == 0
        assert sim._plan is None and sim._group_index is None
        assert not sim._flagged.any()
        assert np.all(sim._rate_ewma == 0.0)
        assert sim._warmup_until == 110

    def test_warmup_admission_is_neutral(self, scenario):
        sim = FluidSimulator(scenario, strategy="floc", seed=3)
        sim.restart_defense(0, warmup_ticks=100)
        rates = sim._send_rates()
        arrivals = rates * sim._upstream_survival(rates)[sim.origin]
        during = sim._admit_floc(arrivals, tick=10)
        neutral = sim._admit_nd(arrivals)
        assert np.allclose(during, neutral)

    def test_warmup_expires_and_floc_resumes(self, scenario):
        sim = FluidSimulator(scenario, strategy="floc", seed=3)
        faults = FaultSchedule().at(40, fluid_restart(warmup_ticks=20))
        faults.install(sim)
        sim.run(ticks=120, warmup=0)
        assert sim._warmup_until is None
        assert sim.n_groups > 0  # aggregation rebuilt after warm-up

    def test_degrade_recovers_after_restore(self, scenario):
        sim = FluidSimulator(scenario, strategy="floc", seed=3)
        counts = np.bincount(
            scenario.flow_origin_as[~scenario.flow_is_attack],
            minlength=scenario.n_links,
        )
        counts[0] = 0
        for asn in scenario.attack_ases:
            counts[asn] = 0
        degrade = FluidLinkDegrade(int(counts.argmax()), factor=0.2)
        faults = FaultSchedule()
        faults.at(60, degrade.down, name="down")
        faults.at(100, degrade.up, name="up")
        faults.install(sim)
        result = sim.run(ticks=160, warmup=20, record_series=True)
        legit = [ll + la for _, ll, la, _ in result.series]
        pre = np.mean(legit[:40])  # ticks 20..59
        post = np.mean(legit[120:])  # ticks 140..159
        assert post >= 0.8 * pre
        assert [t for t, _ in faults.log] == [60, 100]
