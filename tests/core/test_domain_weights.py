"""ISP-agreement proportional allocation (paper footnote 1)."""

import pytest

from repro.core.config import FLocConfig
from repro.core.router import FLocPolicy
from repro.errors import ConfigError
from repro.traffic.scenarios import build_tree_scenario


class TestConfig:
    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ConfigError):
            FLocConfig(domain_weights={5: 0.0})

    def test_valid_weights_accepted(self):
        cfg = FLocConfig(domain_weights={5: 2.0, 7: 0.5})
        assert cfg.domain_weights[5] == 2.0


class TestAllocation:
    def _run(self, weights):
        scenario = build_tree_scenario(
            scale_factor=0.08,
            attack_kind="none",
            legit_per_leaf=40,  # populous domains so demand fills shares
            seed=6,
            start_spread_seconds=0.5,
        )
        cfg = FLocConfig(
            domain_weights=weights,
            legitimate_aggregation=False,  # isolate the weight effect
        )
        scenario.attach_policy(FLocPolicy(cfg))
        monitor = scenario.add_target_monitor(start_seconds=4.0)
        scenario.run_seconds(12.0)
        per_path = {}
        for flow in scenario.legit_flows:
            per_path[flow.path_id] = per_path.get(flow.path_id, 0) + (
                monitor.service_counts.get(flow.flow_id, 0)
            )
        return scenario, per_path

    def test_weighted_domain_gets_proportionally_more(self):
        probe = build_tree_scenario(scale_factor=0.08, attack_kind="none")
        heavy_as = probe.path_ids[0][0]
        scenario, per_path = self._run({heavy_as: 3.0})
        heavy = per_path[scenario.path_ids[0]]
        others = [
            v for pid, v in per_path.items() if pid != scenario.path_ids[0]
        ]
        mean_other = sum(others) / len(others)
        # 3x weight: clearly above the unweighted paths (demand permitting)
        assert heavy > 1.5 * mean_other

    def test_unweighted_run_is_equal_allocation(self):
        scenario, per_path = self._run(None)
        values = sorted(per_path.values())
        assert values[0] > 0.5 * values[-1]
