"""FLoc configuration validation."""

import pytest

from repro.core.config import FLocConfig
from repro.errors import ConfigError


class TestDefaults:
    def test_paper_defaults(self):
        cfg = FLocConfig()
        assert cfg.beta == 0.2  # Eq. IV.6 smoothing, paper's value
        assert cfg.q_min_fraction == 0.2  # 20% of buffer
        assert cfg.rtt_correction == 0.5  # divide average RTT by 2
        assert cfg.n_max == 2  # covert-attack experiment value
        assert cfg.legit_agg_bandwidth_cap == 0.5  # 50% growth veto

    def test_aggregation_off_by_default(self):
        assert FLocConfig().s_max is None


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"beta": 0.0},
            {"beta": 1.0},
            {"conformance_threshold": 1.5},
            {"q_min_fraction": 0.0},
            {"q_min_fraction": 1.0},
            {"rtt_correction": 0.0},
            {"s_max": 0},
            {"measure_interval": 0},
            {"aggregation_interval": 0},
            {"attack_mtd_fraction": 0.0},
            {"attack_mtd_fraction": 1.5},
            {"max_tracked_paths": 0},
            {"state_backend": "bloom"},
            {"state_backend": "EXACT"},
            {"sketch_hot_paths": 0},
            {"sketch_width": 7},
            {"sketch_depth": 0},
            {"sketch_depth": 99},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            FLocConfig(**kwargs)

    def test_valid_custom_config(self):
        cfg = FLocConfig(s_max=25, n_max=4, preferential_drop=False)
        assert cfg.s_max == 25
        assert cfg.n_max == 4
        assert not cfg.preferential_drop


class TestStateBackend:
    def test_exact_is_the_default(self):
        cfg = FLocConfig()
        assert cfg.state_backend == "exact"
        assert cfg.max_tracked_paths is None

    def test_sketch_backend_accepted(self):
        cfg = FLocConfig(
            state_backend="sketch",
            sketch_hot_paths=64,
            sketch_width=256,
            sketch_depth=3,
        )
        assert cfg.state_backend == "sketch"
        assert cfg.sketch_hot_paths == 64
