"""MTD measurement, classification rules, Eq. (IV.5) service probability."""

import pytest

from repro.core.mtd import (
    INFINITE_MTD,
    FlowDropTracker,
    MtdClassifier,
    aggregate_mtd,
)


class TestTracker:
    def test_no_drops_infinite_mtd(self):
        tracker = FlowDropTracker()
        assert tracker.mtd("f", tick=100, window=50) == INFINITE_MTD

    def test_mtd_is_window_over_drops(self):
        tracker = FlowDropTracker()
        for t in (10, 20, 30, 40):
            tracker.record_drop("f", t)
        assert tracker.mtd("f", tick=40, window=40) == pytest.approx(10.0)

    def test_window_excludes_old_drops(self):
        tracker = FlowDropTracker()
        tracker.record_drop("f", 1)
        tracker.record_drop("f", 95)
        assert tracker.drops_in_window("f", tick=100, window=10) == 1

    def test_horizon_trims_records(self):
        tracker = FlowDropTracker(horizon=50)
        tracker.record_drop("f", 0)
        assert tracker.drops_in_window("f", tick=100, window=1000) == 0

    def test_keys_independent(self):
        tracker = FlowDropTracker()
        tracker.record_drop("a", 10)
        assert tracker.drops_in_window("b", tick=20, window=100) == 0

    def test_forget_stale_releases_memory(self):
        tracker = FlowDropTracker(horizon=50)
        tracker.record_drop("f", 0)
        tracker.record_drop("g", 100)
        tracker.forget_stale(tick=100)
        assert tracker.tracked_units() == 1

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            FlowDropTracker(horizon=0)

    def test_aggregate_mtd_sums_keys(self):
        tracker = FlowDropTracker()
        tracker.record_drop("a", 10)
        tracker.record_drop("b", 20)
        mtd, drops = aggregate_mtd(tracker, ["a", "b"], tick=20, window=20)
        assert drops == 2
        assert mtd == pytest.approx(10.0)


class TestClassifier:
    @pytest.fixture
    def classifier(self):
        return MtdClassifier(attack_mtd_fraction=0.5, block_mtd_fraction=1 / 64)

    def test_service_probability_eq_iv5(self, classifier):
        # min(1, MTD/ref): proportional penalty below the reference
        assert classifier.service_probability(5.0, 20.0) == pytest.approx(0.25)
        assert classifier.service_probability(40.0, 20.0) == 1.0
        assert classifier.service_probability(INFINITE_MTD, 20.0) == 1.0

    def test_attack_flow_threshold(self, classifier):
        assert classifier.is_attack_flow(9.0, 20.0)  # < 0.5 * ref
        assert not classifier.is_attack_flow(11.0, 20.0)
        assert not classifier.is_attack_flow(INFINITE_MTD, 20.0)

    def test_blocking_threshold(self, classifier):
        assert classifier.should_block(0.1, 20.0)
        assert not classifier.should_block(1.0, 20.0)

    def test_attack_path_requires_both_conditions(self, classifier):
        # MTD below the period AND request rate above allocation + 1/T
        assert classifier.is_attack_path(
            aggregate_mtd=2.0, token_period=5.0, request_rate=30.0, bandwidth=10.0
        )
        # low MTD but modest rate: not an attack path
        assert not classifier.is_attack_path(
            aggregate_mtd=2.0, token_period=5.0, request_rate=10.0, bandwidth=10.0
        )
        # high rate but healthy MTD: not an attack path
        assert not classifier.is_attack_path(
            aggregate_mtd=9.0, token_period=5.0, request_rate=30.0, bandwidth=10.0
        )

    def test_misidentified_flow_recovers(self, classifier):
        # as a source backs off, MTD grows and service probability -> 1
        probs = [
            classifier.service_probability(mtd, 20.0)
            for mtd in (2.0, 5.0, 10.0, 20.0, 40.0)
        ]
        assert probs == sorted(probs)
        assert probs[-1] == 1.0
