"""Per-path token buckets: parameters, refills, burst tolerance."""

import pytest

from repro.core.tokenbucket import PathTokenBucket
from repro.errors import ConfigError
from repro.tcp import model


class TestParameters:
    def test_period_matches_model(self):
        bucket = PathTokenBucket(bandwidth=30.0, rtt=12.0, n_flows=6)
        expected = model.token_period(30.0, 12.0, 6)
        assert bucket.period == max(1, round(expected))

    def test_average_rate_preserved_after_period_clamp(self):
        # tiny period -> clamped to 1 tick, but size scales to keep C
        bucket = PathTokenBucket(bandwidth=2.0, rtt=2.0, n_flows=50)
        assert bucket.period == 1
        assert bucket.base_size == pytest.approx(2.0)

    def test_increased_size_ratio(self):
        bucket = PathTokenBucket(bandwidth=30.0, rtt=12.0, n_flows=9)
        assert bucket.increased_size / bucket.base_size == pytest.approx(
            1.0 + 2.0 / 9.0
        )

    def test_reference_mtd(self):
        bucket = PathTokenBucket(bandwidth=30.0, rtt=12.0, n_flows=6)
        assert bucket.reference_mtd == 6 * bucket.period

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ConfigError):
            PathTokenBucket(bandwidth=0.0, rtt=10.0, n_flows=1)

    def test_set_params_updates_everything(self):
        bucket = PathTokenBucket(bandwidth=10.0, rtt=10.0, n_flows=2)
        old_period = bucket.period
        bucket.set_params(bandwidth=10.0, rtt=10.0, n_flows=8)
        assert bucket.period < old_period  # T ~ 1/n^2


class TestRuntime:
    def test_requests_bounded_by_size_within_period(self):
        bucket = PathTokenBucket(bandwidth=10.0, rtt=10.0, n_flows=4, now=0)
        granted = sum(1 for _ in range(10_000) if bucket.request())
        assert granted == int(bucket.size)

    def test_unused_tokens_discarded_at_refill(self):
        bucket = PathTokenBucket(bandwidth=10.0, rtt=10.0, n_flows=4, now=0)
        # consume nothing; after a refill the tokens are reset, not stacked
        bucket.on_tick(bucket.period)
        assert bucket.tokens == pytest.approx(bucket.size)

    def test_burst_within_period_allowed(self):
        bucket = PathTokenBucket(bandwidth=5.0, rtt=12.0, n_flows=2, now=0)
        size = int(bucket.size)
        assert size > 5  # bursty demand above the per-tick rate fits
        assert all(bucket.request() for _ in range(size))

    def test_flooding_mode_uses_base_size(self):
        bucket = PathTokenBucket(bandwidth=10.0, rtt=10.0, n_flows=4, now=0)
        bucket.use_increased = False
        bucket.on_tick(bucket.period)  # refill at the new size
        granted = sum(1 for _ in range(10_000) if bucket.request())
        assert granted == int(bucket.base_size)

    def test_refill_happens_at_period_boundary(self):
        bucket = PathTokenBucket(bandwidth=10.0, rtt=10.0, n_flows=4, now=0)
        while bucket.request():
            pass
        bucket.on_tick(bucket.period - 1) if bucket.period > 1 else None
        if bucket.period > 1:
            assert not bucket.request()
        bucket.on_tick(bucket.period)
        assert bucket.request()

    def test_drop_counters_rotate_per_period(self):
        bucket = PathTokenBucket(bandwidth=10.0, rtt=10.0, n_flows=4, now=0)
        bucket.record_drop()
        bucket.record_drop()
        assert bucket.drops_this_period == 2
        bucket.on_tick(bucket.period)
        assert bucket.drops_this_period == 0
        assert bucket.last_period_drops == 2

    def test_long_run_rate_equals_bandwidth(self):
        bucket = PathTokenBucket(bandwidth=3.0, rtt=20.0, n_flows=3, now=0)
        bucket.use_increased = False
        granted = 0
        for tick in range(1, 1201):
            bucket.on_tick(tick)
            while bucket.request():
                granted += 1
        assert granted / 1200.0 == pytest.approx(3.0, rel=0.1)
