"""The fully scalable router configuration (Section V):

Bloom drop filter + probabilistic updates + drop-rate flow estimation —
the configuration the paper argues can run on OC-192 backbone routers.
"""

import pytest

from repro.core.config import FLocConfig
from repro.core.router import FLocPolicy
from repro.traffic.scenarios import build_tree_scenario


def scalable_config():
    return FLocConfig(
        use_drop_filter=True,
        estimate_flow_counts=True,
        s_max=25,
    )


@pytest.fixture(scope="module")
def scalable_run():
    scenario = build_tree_scenario(
        scale_factor=0.08,
        attack_kind="cbr",
        attack_rate_mbps=2.0,
        seed=31,
        start_spread_seconds=0.5,
    )
    scenario.attach_policy(FLocPolicy(scalable_config()))
    monitor = scenario.add_target_monitor(start_seconds=4.0)
    scenario.run_seconds(12.0)
    policy = scenario.topology.link(*scenario.target).policy
    return scenario, policy, monitor


class TestScalableMode:
    def test_defense_holds(self, scalable_run):
        scenario, policy, monitor = scalable_run
        window = scenario.units.seconds_to_ticks(8.0)
        legit = sum(
            monitor.service_counts.get(f.flow_id, 0)
            for f in scenario.legit_flows
        )
        assert legit / (scenario.capacity * window) > 0.55

    def test_no_exact_per_flow_state(self, scalable_run):
        _, policy, _ = scalable_run
        assert policy.tracker is None
        assert policy.drop_filter is not None

    def test_memory_writes_sublinear_in_drops(self, scalable_run):
        _, policy, _ = scalable_run
        filt = policy.drop_filter
        assert filt.drops_seen > 0
        # probabilistic updates: writes stay well under drops x arrays
        assert filt.memory_updates < filt.drops_seen * filt.m

    def test_aggregation_still_respects_budget(self, scalable_run):
        _, policy, _ = scalable_run
        assert policy.plan.n_groups <= 25

    def test_array_selection_degree_valid(self, scalable_run):
        _, policy, _ = scalable_run
        assert 1 <= policy._filter_k_arrays <= policy.drop_filter.m

    def test_preferential_drops_engaged(self, scalable_run):
        _, policy, _ = scalable_run
        assert policy.drop_stats["preferential"] > 0
