"""Queue modes, Q_max sizing, early activation, random drop."""

import random

import pytest

from repro.core.queue_manager import QueueManager, QueueMode
from repro.errors import ConfigError


@pytest.fixture
def qm():
    return QueueManager(buffer_size=1000, q_min_fraction=0.2,
                        rng=random.Random(1))


class TestModes:
    def test_q_min_is_20_percent(self, qm):
        assert qm.q_min == 200

    def test_mode_boundaries(self, qm):
        assert qm.mode(0) is QueueMode.UNCONGESTED
        assert qm.mode(200) is QueueMode.UNCONGESTED
        assert qm.mode(201) is QueueMode.CONGESTED
        assert qm.mode(qm.q_max) is QueueMode.CONGESTED
        assert qm.mode(qm.q_max + 1) is QueueMode.FLOODING

    def test_invalid_buffer(self):
        with pytest.raises(ConfigError):
            QueueManager(buffer_size=1)


class TestQMax:
    def test_q_max_formula(self, qm):
        # Q_max = Q_min + sum sqrt(n_i) W_i
        qm.update_q_max({(1,): (9, 10.0), (2,): (4, 5.0)})
        assert qm.q_max == 200 + int(3 * 10.0 + 2 * 5.0)

    def test_q_max_clamped_to_buffer(self, qm):
        qm.update_q_max({(1,): (10_000, 10_000.0)})
        assert qm.q_max == 1000

    def test_q_max_never_below_q_min(self, qm):
        qm.update_q_max({})
        assert qm.q_max > qm.q_min


class TestEarlyActivation:
    def test_oversubscribed_path_enters_early(self, qm):
        # lambda = 4C: threshold = Q_min/4 = 50
        assert qm.early_congestion(q_curr=51, bandwidth=10.0, request_rate=40.0)
        assert not qm.early_congestion(q_curr=49, bandwidth=10.0, request_rate=40.0)

    def test_conformant_path_keeps_full_q_min(self, qm):
        assert not qm.early_congestion(q_curr=199, bandwidth=10.0, request_rate=5.0)
        assert qm.early_congestion(q_curr=201, bandwidth=10.0, request_rate=5.0)

    def test_zero_rate_never_early(self, qm):
        assert not qm.early_congestion(q_curr=999, bandwidth=10.0, request_rate=0.0)


class TestRandomDrop:
    def test_below_q_min_never_drops(self, qm):
        assert not any(qm.random_drop(q_curr=qm.q_min) for _ in range(200))

    def test_above_q_max_always_drops(self, qm):
        assert all(qm.random_drop(q_curr=qm.q_max + 1) for _ in range(200))

    def test_drop_probability_grows_with_queue(self, qm):
        qm.update_q_max({(1,): (100, 30.0)})
        low_q = qm.q_min + (qm.q_max - qm.q_min) // 4
        high_q = qm.q_min + 3 * (qm.q_max - qm.q_min) // 4
        low = sum(qm.random_drop(low_q) for _ in range(2000))
        high = sum(qm.random_drop(high_q) for _ in range(2000))
        assert high > low
