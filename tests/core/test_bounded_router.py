"""Bounded router state: LRU eviction, collateral release, sketch tier.

The exact-mode regression locks at the bottom pin chaos run digests so
the bounded-state machinery provably stays out of the default path:
``state_backend="exact"`` with no path limit must remain byte-identical
to the seed behaviour.
"""

import pytest

from repro.core.config import FLocConfig
from repro.core.router import FLocPolicy
from repro.net.engine import Engine
from repro.net.topology import Topology


def attached_policy(cfg):
    """A policy attached to a minimal one-link engine (no traffic)."""
    topo = Topology()
    topo.add_duplex_link("a", "b", capacity=10.0, buffer=50)
    engine = Engine(topo, seed=1)
    policy = FLocPolicy(cfg)
    policy.attach(topo.link("a", "b"), engine)
    return policy


def touch(policy, pid, tick):
    state = policy._path_state(pid, tick)
    state.last_arrival = tick
    return state


class TestLruEviction:
    def test_limit_enforced(self):
        policy = attached_policy(FLocConfig(max_tracked_paths=3))
        for i in range(10):
            touch(policy, (i,), tick=i)
        assert len(policy.paths) == 3
        assert policy.tracked_paths_peak == 3

    def test_least_recently_touched_is_victim(self):
        policy = attached_policy(FLocConfig(max_tracked_paths=3))
        for i in range(3):
            touch(policy, (i,), tick=i)
        # re-touch path 0 so path 1 becomes the LRU victim
        touch(policy, (0,), tick=10)
        touch(policy, (3,), tick=11)
        assert set(policy.paths) == {(0,), (2,), (3,)}

    def test_eviction_counted_by_cause(self):
        policy = attached_policy(FLocConfig(max_tracked_paths=2))
        for i in range(5):
            touch(policy, (i,), tick=i)
        assert policy.eviction_stats["memory-pressure"] == 3
        assert policy.eviction_stats["restart"] == 0

    def test_unbounded_default_never_evicts(self):
        policy = attached_policy(FLocConfig())
        for i in range(200):
            touch(policy, (i,), tick=i)
        assert len(policy.paths) == 200
        assert policy.eviction_stats["memory-pressure"] == 0
        assert not policy._lru  # LRU index only maintained under a limit

    def test_restart_counts_lost_paths(self):
        policy = attached_policy(FLocConfig(max_tracked_paths=8))
        for i in range(5):
            touch(policy, (i,), tick=i)
        policy.restart(tick=100)
        assert policy.eviction_stats["restart"] == 5
        assert not policy.paths and not policy._lru


class TestCollateralRelease:
    def test_eviction_releases_all_per_path_state(self):
        policy = attached_policy(FLocConfig(max_tracked_paths=2))
        state = touch(policy, (0,), tick=0)
        unit = ("unit-0", 0, (0,))
        state.flows[unit] = 0
        policy.tracker.record_drop(unit, tick=1)
        policy._blocked[unit] = 500
        policy.conformance.update((0,), 4, 2)
        policy._group_state((0,), tick=1)
        group_key = policy.plan.group((0,))
        assert (0,) in policy.groups[group_key].members

        touch(policy, (1,), tick=2)
        touch(policy, (2,), tick=3)  # evicts (0,)

        assert (0,) not in policy.paths
        assert policy.tracker.drop_count(unit) == 0
        assert policy.tracker.tracked_units() == 0
        assert unit not in policy._blocked
        assert policy.conformance.known_value((0,)) is None
        assert group_key not in policy.groups

    def test_regeneration_matches_partial_restart(self):
        # an exact-mode evicted path that returns starts cold, exactly
        # like a fresh path after a partial restart
        policy = attached_policy(FLocConfig(max_tracked_paths=2))
        state = touch(policy, (0,), tick=0)
        state.lambda_rate = 9.0
        state.rtt_ewma = 33.0
        touch(policy, (1,), tick=1)
        touch(policy, (2,), tick=2)  # evicts (0,)
        reborn = touch(policy, (0,), tick=3)
        assert reborn.lambda_rate == 0.0
        assert reborn.rtt_ewma == policy._initial_rtt


class TestSketchTier:
    def cfg(self, hot=2, width=4096):
        return FLocConfig(
            state_backend="sketch", sketch_hot_paths=hot, sketch_width=width
        )

    def test_sketch_backend_allocates_tier(self):
        policy = attached_policy(self.cfg())
        assert policy.sketch is not None
        assert policy.sketch.memory_bytes > 0

    def test_hot_tier_limit_is_sketch_hot_paths(self):
        policy = attached_policy(self.cfg(hot=3))
        for i in range(10):
            touch(policy, (i,), tick=i)
        assert len(policy.paths) == 3

    def test_revival_seeds_from_folded_history(self):
        policy = attached_policy(self.cfg())
        state = touch(policy, (0,), tick=0)
        state.lambda_rate = 6.0
        state.rtt_ewma = 28.0
        policy.conformance.update((0,), 10, 9)
        conf_at_eviction = policy.conformance.known_value((0,))
        touch(policy, (1,), tick=1)
        touch(policy, (2,), tick=2)  # folds and evicts (0,)
        reborn = touch(policy, (0,), tick=3)
        assert reborn.lambda_rate == pytest.approx(6.0)
        assert reborn.rtt_ewma == pytest.approx(28.0)
        assert policy.conformance.known_value((0,)) == pytest.approx(
            conf_at_eviction
        )

    def test_never_seen_path_starts_cold(self):
        policy = attached_policy(self.cfg())
        state = touch(policy, (0,), tick=0)
        assert state.lambda_rate == 0.0
        assert policy.sketch.revivals_total == 0

    def test_restart_wipes_sketch_tier(self):
        policy = attached_policy(self.cfg())
        state = touch(policy, (0,), tick=0)
        state.lambda_rate = 6.0
        touch(policy, (1,), tick=1)
        touch(policy, (2,), tick=2)
        policy.restart(tick=50)
        reborn = touch(policy, (0,), tick=60)
        assert reborn.lambda_rate == 0.0  # volatile memory: no revival

    def test_snapshot_roundtrip_preserves_sketch(self):
        policy = attached_policy(self.cfg())
        state = touch(policy, (0,), tick=0)
        state.lambda_rate = 6.0
        touch(policy, (1,), tick=1)
        touch(policy, (2,), tick=2)
        snap = policy.snapshot()
        other = attached_policy(self.cfg())
        other.restore(snap)
        assert list(other._lru) == list(policy._lru)
        reborn = other._path_state((0,), 3)
        assert reborn.lambda_rate == pytest.approx(6.0)


class TestExactModeRegressionLock:
    # digests computed at the seed commit (pre-bounded-state code); the
    # default exact backend must keep producing them byte-identically
    PINNED = {
        0: "02c8e6a1ac9370085fb7b8feb96dad9486533d4d5980a4bf4feb38e93262ea19",
        1: "73a0d070149ba1202c69ee9e15f47b72635f0218af40ad7e1612f4eebd7c4373",
    }

    @pytest.mark.parametrize("index", sorted(PINNED))
    def test_packet_campaign_digest_unchanged(self, index):
        from repro.chaos.campaign import execute_campaign
        from repro.chaos.spec import sample_campaign

        spec = sample_campaign(7, index, simulator="packet")
        assert spec.state_backend == "exact"
        assert execute_campaign(spec).digest == self.PINNED[index]
