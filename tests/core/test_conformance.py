"""Path-conformance EWMA (Eq. IV.6)."""

import pytest

from repro.core.conformance import ConformanceTracker
from repro.errors import ConfigError


class TestUpdate:
    def test_initial_value_fully_conformant(self):
        tracker = ConformanceTracker()
        assert tracker.value((1, 2)) == 1.0

    def test_eq_iv6_single_step(self):
        tracker = ConformanceTracker(beta=0.2)
        # instant conformance = 1 - 6/9 = 1/3; E = 0.2/3 + 0.8*1.0
        value = tracker.update((1,), n_flows=9, n_attack=6)
        assert value == pytest.approx(0.2 * (1 / 3) + 0.8 * 1.0)

    def test_converges_to_instant_value(self):
        tracker = ConformanceTracker(beta=0.2)
        for _ in range(100):
            tracker.update((1,), n_flows=10, n_attack=5)
        assert tracker.value((1,)) == pytest.approx(0.5, abs=1e-3)

    def test_zero_flows_counts_as_conformant(self):
        tracker = ConformanceTracker(beta=0.5, initial=0.0)
        assert tracker.update((1,), n_flows=0, n_attack=0) == pytest.approx(0.5)

    def test_recovery_after_attack_ends(self):
        tracker = ConformanceTracker(beta=0.2)
        for _ in range(20):
            tracker.update((1,), n_flows=10, n_attack=10)
        low = tracker.value((1,))
        for _ in range(40):
            tracker.update((1,), n_flows=10, n_attack=0)
        assert tracker.value((1,)) > 0.99 > low

    def test_invalid_counts_rejected(self):
        tracker = ConformanceTracker()
        with pytest.raises(ConfigError):
            tracker.update((1,), n_flows=5, n_attack=6)
        with pytest.raises(ConfigError):
            tracker.update((1,), n_flows=-1, n_attack=0)

    def test_invalid_beta_rejected(self):
        with pytest.raises(ConfigError):
            ConformanceTracker(beta=0.0)
        with pytest.raises(ConfigError):
            ConformanceTracker(beta=1.0)


class TestPartition:
    def test_partition_by_threshold(self):
        tracker = ConformanceTracker(beta=0.5)
        for _ in range(30):
            tracker.update((1,), 10, 9)  # heavily contaminated
            tracker.update((2,), 10, 0)  # clean
        legit, attack = tracker.partition([(1,), (2,), (3,)], threshold=0.5)
        assert (1,) in attack
        assert (2,) in legit
        assert (3,) in legit  # unknown paths default to conformant

    def test_forget(self):
        tracker = ConformanceTracker(beta=0.5)
        tracker.update((1,), 10, 10)
        tracker.forget((1,))
        assert tracker.value((1,)) == 1.0

    def test_values_snapshot_is_copy(self):
        tracker = ConformanceTracker(beta=0.5)
        tracker.update((1,), 10, 5)
        snap = tracker.values()
        snap[(1,)] = 0.0
        assert tracker.value((1,)) != 0.0
