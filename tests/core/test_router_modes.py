"""Queue-mode behaviour of the FLoc router observed end to end."""

import pytest

from repro.core.config import FLocConfig
from repro.core.queue_manager import QueueMode
from repro.core.router import FLocPolicy
from repro.net.engine import Engine
from repro.net.topology import Topology
from repro.tcp.source import TcpSource
from repro.traffic.cbr import CbrSource


def build(capacity=5.0, buffer=100, n_tcp=3, cbr_rate=None, seed=13):
    topo = Topology()
    for i in range(n_tcp):
        topo.add_duplex_link(f"h{i}", "r0", capacity=None)
    if cbr_rate:
        topo.add_duplex_link("bot", "r0", capacity=None)
    topo.add_duplex_link("r0", "srv", capacity=capacity, buffer=buffer)
    policy = FLocPolicy(FLocConfig())
    topo.set_policy("r0", "srv", policy)
    engine = Engine(topo, seed=seed)
    for i in range(n_tcp):
        flow = engine.open_flow(f"h{i}", "srv", path_id=(1, 9))
        engine.add_source(TcpSource(flow, start_tick=2 * i))
    if cbr_rate:
        flow = engine.open_flow("bot", "srv", path_id=(2, 9), is_attack=True)
        engine.add_source(CbrSource(flow, rate=cbr_rate))
    return engine, policy


class TestModes:
    def test_uncongested_mode_no_token_drops(self):
        """A lightly loaded link never charges tokens."""
        engine, policy = build(capacity=50.0, n_tcp=2)
        engine.run(1500)
        assert policy.drop_stats["token"] == 0
        assert policy.drop_stats["random"] == 0
        assert policy.drop_stats["preferential"] == 0

    def test_congestion_produces_mode_transitions(self):
        engine, policy = build(capacity=3.0, n_tcp=6, cbr_rate=6.0)
        modes_seen = set()

        def sample(eng, tick):
            q = len(eng.topology.link("r0", "srv").queue)
            modes_seen.add(policy.qm.mode(q))

        engine.add_tick_hook(sample)
        engine.run(2500)
        assert QueueMode.UNCONGESTED in modes_seen
        assert QueueMode.CONGESTED in modes_seen or (
            QueueMode.FLOODING in modes_seen
        )

    def test_q_max_tracks_flow_population(self):
        engine, policy = build(capacity=5.0, n_tcp=6)
        engine.run(600)
        q_max_small = policy.qm.q_max
        assert policy.qm.q_min < q_max_small <= 100

    def test_drop_cause_accounting_complete(self):
        engine, policy = build(capacity=3.0, n_tcp=6, cbr_rate=8.0)
        monitor = engine.add_monitor("r0", "srv")
        engine.run(2500)
        policy_drops = sum(policy.drop_stats.values())
        assert policy_drops == monitor.total_dropped

    def test_bucket_period_at_least_one_tick(self):
        engine, policy = build(capacity=0.5, n_tcp=4)
        engine.run(800)
        for group in policy.groups.values():
            assert group.bucket.period >= 1
            assert group.bucket.size >= 1.0
