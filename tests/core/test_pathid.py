"""Path identifiers and the traffic tree."""

import pytest

from repro.core.pathid import PathTree, common_suffix, origin_as
from repro.errors import ConfigError


class TestHelpers:
    def test_origin_as_is_first_element(self):
        assert origin_as((7, 3, 1)) == 7

    def test_origin_as_empty_rejected(self):
        with pytest.raises(ConfigError):
            origin_as(())

    def test_common_suffix_shared_tail(self):
        assert common_suffix((1, 5, 9), (2, 5, 9)) == (5, 9)

    def test_common_suffix_disjoint(self):
        assert common_suffix((1, 2), (3, 4)) == ()

    def test_common_suffix_identical(self):
        assert common_suffix((1, 2, 3), (1, 2, 3)) == (1, 2, 3)

    def test_common_suffix_different_lengths(self):
        assert common_suffix((9,), (4, 9)) == (9,)


class TestPathTree:
    @pytest.fixture
    def tree(self):
        # three origins behind AS 5, one behind AS 6; all behind AS 9
        return PathTree([(1, 5, 9), (2, 5, 9), (3, 5, 9), (4, 6, 9)])

    def test_leaves_under_root_suffix(self, tree):
        assert sorted(tree.leaves_under((9,))) == [
            (1, 5, 9),
            (2, 5, 9),
            (3, 5, 9),
            (4, 6, 9),
        ]

    def test_leaves_under_interior(self, tree):
        assert sorted(tree.leaves_under((5, 9))) == [
            (1, 5, 9),
            (2, 5, 9),
            (3, 5, 9),
        ]

    def test_leaf_node_holds_pid(self, tree):
        node = tree.node((1, 5, 9))
        assert node is not None
        assert node.leaf_pids == [(1, 5, 9)]

    def test_depth_counts_as_hops(self, tree):
        assert tree.node((9,)).depth == 1
        assert tree.node((5, 9)).depth == 2
        assert tree.node((1, 5, 9)).depth == 3

    def test_internal_nodes(self, tree):
        suffixes = {n.suffix for n in tree.internal_nodes()}
        assert (9,) in suffixes
        assert (5, 9) in suffixes
        assert (1, 5, 9) not in suffixes

    def test_missing_suffix_gives_empty(self, tree):
        assert tree.leaves_under((99,)) == []

    def test_duplicate_insert_keeps_both_records(self):
        tree = PathTree([(1, 9), (1, 9)])
        assert tree.leaves_under((9,)) == [(1, 9), (1, 9)]

    def test_empty_pid_rejected(self):
        with pytest.raises(ConfigError):
            PathTree([()])
