"""The scalable drop-record filter of Section V-B."""

import random

import pytest

from repro.core.dropfilter import DropRecordFilter


def small_filter(**kwargs):
    defaults = dict(m=4, bits=12)
    defaults.update(kwargs)
    return DropRecordFilter(**defaults)


class TestRecording:
    def test_clean_flow_zero_ratio(self):
        filt = small_filter()
        assert filt.preferential_drop_ratio("f", tick=0, epoch_ticks=100) == 0.0
        assert filt.excess_drops("f", tick=0, epoch_ticks=100) == 0.0

    def test_extra_drops_accumulate(self):
        filt = small_filter()
        for i in range(5):
            filt.record_drop("f", tick=i, epoch_ticks=100)
        assert filt.excess_drops("f", tick=5, epoch_ticks=100) >= 4.0

    def test_decay_one_per_epoch(self):
        filt = small_filter()
        filt.record_drop("f", tick=0, epoch_ticks=10)
        filt.record_drop("f", tick=0, epoch_ticks=10)
        # after 2 epochs the 2 extra drops have decayed away
        assert filt.excess_drops("f", tick=20, epoch_ticks=10) == pytest.approx(
            0.0
        )

    def test_legitimate_rate_drop_pattern_stays_clean(self):
        # one drop per epoch is the legitimate pattern: d hovers near 1
        filt = small_filter()
        for epoch in range(20):
            filt.record_drop("f", tick=epoch * 10, epoch_ticks=10)
        assert filt.excess_drops("f", tick=200, epoch_ticks=10) <= 1.5
        assert filt.preferential_drop_ratio("f", 200, 10) < 0.10

    def test_aggressive_flow_high_ratio(self):
        # 8 drops per epoch: d/t_s ~ 7 -> heavy preferential dropping
        filt = small_filter()
        tick = 0
        for epoch in range(10):
            for _ in range(8):
                filt.record_drop("f", tick=tick, epoch_ticks=10)
            tick += 10
        assert filt.preferential_drop_ratio("f", tick, 10) > 0.5

    def test_blocking_threshold(self):
        filt = small_filter(k_bits=2)  # cap = 4 drops/epoch
        for _ in range(80):
            filt.record_drop("f", tick=0, epoch_ticks=100)
        assert filt.should_block("f", tick=0, epoch_ticks=100)

    def test_eq_v1_formula(self):
        filt = small_filter()
        for _ in range(4):
            filt.record_drop("f", tick=0, epoch_ticks=100)
        d = filt.excess_drops("f", tick=0, epoch_ticks=100)
        ts = 1.0 + 1.0  # t_s advanced once (d exceeded cap*ts? cap=4: no)
        ratio = filt.preferential_drop_ratio("f", 0, 100)
        assert ratio == pytest.approx(min(1.0, d / (filt._min_entry('f',0,100)[1] + d - 1)))


class TestProbabilisticUpdate:
    def test_fewer_memory_writes_same_estimate(self):
        rng = random.Random(1)
        exact = small_filter()
        prob = small_filter(probabilistic_update=True, rng=rng)
        tick = 0
        for epoch in range(50):
            for _ in range(8):
                exact.record_drop("f", tick=tick, epoch_ticks=10)
                prob.record_drop("f", tick=tick, epoch_ticks=10)
            tick += 10
        assert prob.memory_updates < exact.memory_updates
        e1 = exact.excess_ratio("f", tick, 10)
        e2 = prob.excess_ratio("f", tick, 10)
        assert e2 == pytest.approx(e1, rel=0.6)  # same order of magnitude

    def test_array_selection_reduces_writes(self):
        rng = random.Random(2)
        filt = small_filter(rng=rng)
        for i in range(100):
            filt.record_drop("f", tick=i, epoch_ticks=1000,
                             attack_domain=True, k_arrays=2)
        # k/m = 1/2 of drops written, each to 2 of 4 arrays
        assert filt.memory_updates < 100 * 4 * 0.75


class TestDimensioning:
    def test_paper_false_positive_numbers(self):
        # paper: four 2^24 arrays, 0.5M flows -> 7.4e-7
        fp = DropRecordFilter.false_positive_ratio(0.5e6, m=4, bits=24)
        assert fp == pytest.approx(7.4e-7, rel=0.1)

    def test_false_positive_monotone_in_flows(self):
        lo = DropRecordFilter.false_positive_ratio(1e5, 4, 24)
        hi = DropRecordFilter.false_positive_ratio(4e6, 4, 24)
        assert hi > lo

    def test_selection_lowers_effective_load(self):
        with_sel = DropRecordFilter.false_positive_with_selection(
            n_total=4e6, n_attack=3.5e6, k=1, m=4, bits=24
        )
        without = DropRecordFilter.false_positive_ratio(4e6, 4, 24)
        assert with_sel < without

    def test_select_k_meets_threshold(self):
        k = DropRecordFilter.select_k(
            n_total=4e6, n_attack=3.5e6, n_threshold=1.5e6, m=4
        )
        assert 4e6 - 3.5e6 + 3.5e6 * k / 4 <= 1.5e6

    def test_memory_footprint_scales(self):
        small = small_filter(bits=10)
        big = small_filter(bits=12)
        assert big.memory_bytes == 4 * small.memory_bytes

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DropRecordFilter(m=0)
        with pytest.raises(ValueError):
            DropRecordFilter(bits=0)
