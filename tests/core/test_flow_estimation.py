"""Flow-count estimation from drop rates (Section V-B.1, router-wired)."""

import pytest

from repro.core.config import FLocConfig
from repro.core.router import FLocPolicy
from repro.traffic.scenarios import build_tree_scenario


def run_floc(cfg, seconds=12.0):
    scenario = build_tree_scenario(
        scale_factor=0.08,
        attack_kind="cbr",
        attack_rate_mbps=2.0,
        seed=17,
        start_spread_seconds=0.5,
    )
    scenario.attach_policy(FLocPolicy(cfg))
    monitor = scenario.add_target_monitor(start_seconds=4.0)
    scenario.run_seconds(seconds)
    policy = scenario.topology.link(*scenario.target).policy
    return scenario, policy, monitor


class TestEstimation:
    def test_defense_survives_estimated_counts(self):
        scenario, policy, monitor = run_floc(
            FLocConfig(estimate_flow_counts=True)
        )
        window = scenario.units.seconds_to_ticks(8.0)
        attack_paths = set(scenario.attack_path_ids)
        legit = sum(
            monitor.service_counts.get(f.flow_id, 0)
            for f in scenario.legit_flows
        )
        share = legit / (scenario.capacity * window)
        # the estimator-based configuration still protects the majority
        # of the link for legitimate traffic
        assert share > 0.6

    def test_estimates_track_exact_counts_on_conformant_groups(self):
        _, exact_policy, _ = run_floc(FLocConfig())
        scenario, est_policy, _ = run_floc(
            FLocConfig(estimate_flow_counts=True)
        )
        threshold = est_policy.cfg.conformance_threshold
        compared = 0
        for key, est_group in est_policy.groups.items():
            exact_group = exact_policy.groups.get(key)
            if exact_group is None or est_group.drop_rate_ewma <= 1e-6:
                continue
            conformant = all(
                est_policy.conformance.value(p) >= threshold
                for p in est_group.members
            )
            if not conformant:
                continue  # attack aggregates keep exact accounting
            ratio = est_group.bucket.n_flows / max(
                1.0, exact_group.bucket.n_flows
            )
            # order-of-magnitude agreement is what the estimator promises
            assert 0.2 < ratio < 5.0, key
            compared += 1
        assert compared >= 1

    def test_estimation_flag_off_by_default(self):
        assert not FLocConfig().estimate_flow_counts
