"""FLocPolicy end-to-end behaviour on the congested link."""

import pytest

from repro.core.config import FLocConfig
from repro.core.router import FLocPolicy
from repro.traffic.scenarios import build_tree_scenario


def run_floc(scenario, config=None, seconds=6.0, warmup=2.0):
    policy = FLocPolicy(config or FLocConfig())
    scenario.attach_policy(policy)
    monitor = scenario.add_target_monitor(start_seconds=warmup)
    scenario.run_seconds(seconds)
    return policy, monitor


class TestCapabilities:
    def test_syn_receives_capability(self, no_attack_tree):
        policy, _ = run_floc(no_attack_tree, seconds=3.0, warmup=0.5)
        # every established legit source holds a router-issued capability
        established = [
            s for s in no_attack_tree.legit_sources if s.established
        ]
        assert established
        assert all(s.capability is not None for s in established)

    def test_spoofed_data_dropped(self, no_attack_tree):
        from repro.net.packet import DATA, Packet

        policy, _ = run_floc(no_attack_tree, seconds=2.0, warmup=0.5)
        flow = no_attack_tree.legit_flows[0]
        forged = Packet(
            flow_id=flow.flow_id,
            kind=DATA,
            seq=10_000,
            path_id=flow.path_id,
            route=flow.route,
            src_addr=flow.src_host,
            dst_addr=flow.dst_host,
            sent_tick=0,
            capability=b"\x00" * 16,
        )
        before = policy.drop_stats["spoofed"]
        assert not policy.admit(forged, no_attack_tree.engine.tick)
        policy.on_drop(forged, no_attack_tree.engine.tick)
        assert policy.drop_stats["spoofed"] == before + 1


class TestStateTracking:
    def test_paths_registered(self, small_tree):
        policy, _ = run_floc(small_tree)
        assert set(policy.paths) == set(small_tree.path_ids)

    def test_flow_counts_roughly_correct(self, small_tree):
        policy, _ = run_floc(small_tree)
        counted = sum(len(s.flows) for s in policy.paths.values())
        actual = len(small_tree.legit_flows) + len(small_tree.attack_flows)
        assert counted == pytest.approx(actual, rel=0.25)

    def test_rtt_estimates_reasonable(self, small_tree):
        policy, _ = run_floc(small_tree)
        # base RTT is ~2*(height+2) ticks; SYN->data measures the
        # router->dst->src->router loop which is close to the full RTT
        for state in policy.paths.values():
            assert 2.0 <= state.rtt_ewma <= 60.0

    def test_conformance_separates_attack_paths(self, small_tree):
        policy, _ = run_floc(small_tree, seconds=8.0)
        snapshot = policy.conformance_snapshot()
        attack = set(small_tree.attack_path_ids)
        attack_vals = [v for p, v in snapshot.items() if p in attack]
        legit_vals = [v for p, v in snapshot.items() if p not in attack]
        assert max(attack_vals) < min(1.0, sum(legit_vals) / len(legit_vals))


class TestAttackHandling:
    def test_attack_units_identified(self, small_tree):
        policy, _ = run_floc(small_tree, seconds=8.0)
        # most CBR bots are identified (they share one accounting unit
        # per bot here)
        assert len(policy.identified_attack_units()) >= len(
            small_tree.attack_flows
        ) * 0.5

    def test_preferential_drops_happen(self, small_tree):
        policy, _ = run_floc(small_tree, seconds=8.0)
        assert policy.drop_stats["preferential"] > 0

    def test_legit_flows_beat_bots_per_flow(self, small_tree):
        _, monitor = run_floc(small_tree, seconds=10.0, warmup=4.0)
        attack_paths = set(small_tree.attack_path_ids)
        legit_in_attack = [
            monitor.service_counts.get(f.flow_id, 0)
            for f in small_tree.legit_flows
            if f.path_id in attack_paths
        ]
        bots = [
            monitor.service_counts.get(f.flow_id, 0)
            for f in small_tree.attack_flows
        ]
        mean = lambda xs: sum(xs) / len(xs)
        assert mean(legit_in_attack) > 1.3 * mean(bots)

    def test_legit_paths_guaranteed_bandwidth(self, small_tree):
        _, monitor = run_floc(small_tree, seconds=10.0, warmup=4.0)
        window = small_tree.units.seconds_to_ticks(6.0)
        attack_paths = set(small_tree.attack_path_ids)
        legit_leaf_total = sum(
            monitor.service_counts.get(f.flow_id, 0)
            for f in small_tree.legit_flows
            if f.path_id not in attack_paths
        )
        share = legit_leaf_total / (small_tree.capacity * window)
        # 21 of 27 paths are legitimate: their flows keep the bulk of it
        assert share > 0.55

    def test_aggregation_respects_s_max(self, small_tree):
        policy, _ = run_floc(small_tree, config=FLocConfig(s_max=25), seconds=8.0)
        assert policy.plan.n_groups <= 25


class TestAblations:
    def test_no_preferential_drop_hurts_legit_in_attack_paths(self):
        def bot_share(preferential):
            scenario = build_tree_scenario(
                scale_factor=0.05, attack_kind="cbr", seed=5,
                start_spread_seconds=0.5,
            )
            cfg = FLocConfig(preferential_drop=preferential)
            _, monitor = run_floc(scenario, cfg, seconds=8.0, warmup=3.0)
            bots = sum(
                monitor.service_counts.get(f.flow_id, 0)
                for f in scenario.attack_flows
            )
            return bots

        assert bot_share(True) < bot_share(False)

    def test_drop_filter_mode_runs(self, small_tree):
        cfg = FLocConfig(use_drop_filter=True)
        policy, monitor = run_floc(small_tree, cfg, seconds=6.0)
        assert policy.drop_filter is not None
        assert policy.tracker is None
        assert monitor.total_serviced > 0
