"""Two-part capabilities: authenticity and the covert fanout limit."""

import pytest

from repro.core.capability import CapabilityIssuer


@pytest.fixture
def issuer():
    return CapabilityIssuer(b"secret", n_max=2)


class TestAuthenticity:
    def test_issue_verify_roundtrip(self, issuer):
        cap = issuer.issue("10.0.0.1", "10.9.9.9", (1, 2, 3))
        assert issuer.verify(cap, "10.0.0.1", "10.9.9.9", (1, 2, 3))

    def test_wrong_source_rejected(self, issuer):
        cap = issuer.issue("10.0.0.1", "10.9.9.9", (1, 2, 3))
        assert not issuer.verify(cap, "10.0.0.2", "10.9.9.9", (1, 2, 3))

    def test_wrong_path_rejected(self, issuer):
        cap = issuer.issue("10.0.0.1", "10.9.9.9", (1, 2, 3))
        assert not issuer.verify(cap, "10.0.0.1", "10.9.9.9", (1, 2, 4))

    def test_none_capability_rejected(self, issuer):
        assert not issuer.verify(None, "a", "b", (1,))

    def test_truncated_capability_rejected(self, issuer):
        cap = issuer.issue("a", "b", (1,))
        assert not issuer.verify(cap[:-1], "a", "b", (1,))

    def test_router_secret_matters(self):
        a = CapabilityIssuer(b"alpha")
        b = CapabilityIssuer(b"beta")
        cap = a.issue("s", "d", (1,))
        assert not b.verify(cap, "s", "d", (1,))


class TestFanoutLimit:
    def test_buckets_bounded_by_n_max(self, issuer):
        buckets = {issuer.fanout_bucket(f"dst{i}") for i in range(200)}
        assert buckets <= {0, 1}
        assert len(buckets) == 2  # both buckets in use across many dsts

    def test_account_key_collapses_covert_flows(self, issuer):
        # one source, many destinations -> at most n_max accounting units
        keys = {
            issuer.account_key("bot", f"dst{i}", (1, 2)) for i in range(50)
        }
        assert len(keys) <= issuer.n_max

    def test_account_key_separates_sources(self, issuer):
        k1 = issuer.account_key("botA", "dst", (1, 2))
        k2 = issuer.account_key("botB", "dst", (1, 2))
        assert k1 != k2

    def test_account_key_separates_paths(self, issuer):
        k1 = issuer.account_key("bot", "dst", (1, 2))
        k2 = issuer.account_key("bot", "dst", (3, 2))
        assert k1 != k2

    def test_n_max_one_collapses_everything(self):
        issuer = CapabilityIssuer(b"s", n_max=1)
        keys = {issuer.account_key("bot", f"d{i}", (1,)) for i in range(20)}
        assert len(keys) == 1

    def test_invalid_n_max_rejected(self):
        with pytest.raises(ValueError):
            CapabilityIssuer(b"s", n_max=0)

    def test_bucket_deterministic(self, issuer):
        assert issuer.fanout_bucket("x") == issuer.fanout_bucket("x")
