"""Attack-path aggregation (Algorithm 1) and legitimate-path aggregation."""

import pytest

from repro.core.aggregation import (
    AggregationPlan,
    aggregate_attack_paths,
    aggregate_legitimate_paths,
    build_plan,
    legitimate_aggregation_cost,
)
from repro.errors import ConfigError

ROOT_AS = 99


def pid(origin, parent):
    """Origin -> parent -> root path id."""
    return (origin, parent, ROOT_AS)


class TestAttackAggregation:
    def test_no_aggregation_when_within_budget(self):
        pids = [pid(1, 10), pid(2, 10)]
        groups = aggregate_attack_paths(pids, {}, n_legit_paths=5, s_max=10)
        assert groups == []

    def test_reduces_identifier_count_to_budget(self):
        # 6 attack paths behind two parents; budget allows 2 identifiers
        pids = [pid(i, 10) for i in range(3)] + [pid(i, 11) for i in range(3, 6)]
        conf = {p: 0.2 for p in pids}
        groups = aggregate_attack_paths(pids, conf, n_legit_paths=8, s_max=10)
        merged = sum(len(m) for _, m in groups)
        remaining = len(pids) - merged + len(groups)
        assert remaining <= 10 - 8

    def test_prefers_low_conformance_subtree(self):
        # parent 10's children are dirtier: it should aggregate first
        dirty = [pid(i, 10) for i in range(3)]
        cleaner = [pid(i, 11) for i in range(3, 6)]
        conf = {p: 0.1 for p in dirty}
        conf.update({p: 0.45 for p in cleaner})
        groups = aggregate_attack_paths(
            dirty + cleaner, conf, n_legit_paths=0, s_max=4
        )
        suffixes = [s for s, _ in groups]
        assert (10, ROOT_AS) in suffixes

    def test_fallback_merges_everything(self):
        # budget of 1 identifier for 6 paths across distinct parents
        pids = [pid(i, 10 + i) for i in range(6)]
        conf = {p: 0.3 for p in pids}
        groups = aggregate_attack_paths(pids, conf, n_legit_paths=10, s_max=11)
        assert len(groups) == 1
        assert sorted(groups[0][1]) == sorted(pids)

    def test_invalid_s_max(self):
        with pytest.raises(ConfigError):
            aggregate_attack_paths([pid(1, 2)], {}, 0, s_max=0)

    def test_groups_are_disjoint(self):
        pids = [pid(i, 10) for i in range(4)] + [pid(i, 11) for i in range(4, 8)]
        conf = {p: 0.2 for p in pids}
        groups = aggregate_attack_paths(pids, conf, n_legit_paths=0, s_max=3)
        seen = set()
        for _, members in groups:
            for m in members:
                assert m not in seen
                seen.add(m)


class TestLegitimateAggregation:
    def test_cost_zero_for_equal_conformance(self):
        members = [pid(1, 10), pid(2, 10)]
        cost = legitimate_aggregation_cost(
            members, {p: 1.0 for p in members}, {members[0]: 15, members[1]: 30}
        )
        assert cost == pytest.approx(0.0)

    def test_equal_conformance_merges_proportionally(self):
        # the Fig. 9 case: same conformance, different populations
        pids = [pid(i, 10 + i // 3) for i in range(9)]
        conf = {p: 1.0 for p in pids}
        counts = {p: (15 if i % 2 == 0 else 30) for i, p in enumerate(pids)}
        groups = aggregate_legitimate_paths(pids, conf, counts)
        assert sum(len(m) for _, m in groups) == 9

    def test_covert_guard_vetoes_huge_population(self):
        pids = [pid(i, 10) for i in range(4)]
        conf = {p: 1.0 for p in pids}
        counts = {p: 30.0 for p in pids}
        counts[pids[0]] = 100_000.0  # covert path: enormous flow count
        groups = aggregate_legitimate_paths(pids, conf, counts)
        for _, members in groups:
            assert pids[0] not in members

    def test_single_path_no_groups(self):
        assert aggregate_legitimate_paths([pid(1, 2)], {}, {}) == []

    def test_conformance_weighting_blocks_bad_merge(self):
        # merging would shift weight to a low-conformance populous path
        pids = [pid(1, 10), pid(2, 10)]
        conf = {pids[0]: 1.0, pids[1]: 0.6}
        counts = {pids[0]: 10.0, pids[1]: 100.0}
        # weighted mean < plain mean -> cost > 0 -> no merge
        assert (
            legitimate_aggregation_cost(pids, conf, counts) > 0
        )
        assert aggregate_legitimate_paths(pids, conf, counts) == []


class TestBuildPlan:
    def test_identity_plan(self):
        plan = AggregationPlan.identity([pid(1, 2), pid(3, 4)])
        assert plan.n_groups == 2
        assert plan.total_shares() == 2.0
        assert plan.group(pid(1, 2)) == pid(1, 2)

    def test_plan_share_semantics(self):
        legit = [pid(i, 10) for i in range(3)]
        attack = [pid(i, 20) for i in range(5, 9)]
        conf = {p: 1.0 for p in legit}
        conf.update({p: 0.1 for p in attack})
        counts = {p: 10.0 for p in legit + attack}
        plan = build_plan(legit, attack, conf, counts, s_max=4)
        # attack groups hold one share each; legit merged group holds one
        # share per member
        for key in plan.aggregated_groups():
            if key[0] == "AGG-A":
                assert plan.shares[key] == 1.0
            else:
                assert plan.shares[key] == float(len(plan.members[key]))

    def test_plan_covers_every_path(self):
        legit = [pid(i, 10) for i in range(3)]
        attack = [pid(i, 20) for i in range(5, 9)]
        conf = {p: 0.1 for p in attack}
        counts = {p: 10.0 for p in legit + attack}
        plan = build_plan(legit, attack, conf, counts, s_max=5)
        for p in legit + attack:
            assert plan.group(p) in plan.members

    def test_no_s_max_skips_attack_aggregation(self):
        attack = [pid(i, 20) for i in range(4)]
        conf = {p: 0.1 for p in attack}
        plan = build_plan([], attack, conf, {p: 5.0 for p in attack}, s_max=None)
        assert plan.n_groups == 4
