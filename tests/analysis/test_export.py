"""CSV export round trips."""

from repro.analysis.export import read_csv, write_csv


class TestCsv:
    def test_roundtrip(self, tmp_path):
        path = write_csv(
            tmp_path / "out.csv", ["a", "b"], [[1, 2.5], ["x", "y"]]
        )
        headers, rows = read_csv(path)
        assert headers == ["a", "b"]
        assert rows == [["1", "2.5"], ["x", "y"]]

    def test_creates_parent_dirs(self, tmp_path):
        path = write_csv(tmp_path / "deep" / "nest" / "f.csv", ["h"], [[1]])
        assert path.exists()

    def test_empty_rows(self, tmp_path):
        path = write_csv(tmp_path / "e.csv", ["only", "headers"], [])
        headers, rows = read_csv(path)
        assert headers == ["only", "headers"]
        assert rows == []

    def test_read_empty_file(self, tmp_path):
        empty = tmp_path / "none.csv"
        empty.write_text("")
        assert read_csv(empty) == ([], [])

    def test_cli_csv_flag(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["run", "fig04", "--csv", str(tmp_path)]) == 0
        headers, rows = read_csv(tmp_path / "fig04.csv")
        assert headers == ["case", "token utilization"]
        assert len(rows) == 3
