"""Empirical CDF helpers."""

import pytest

from repro.analysis.cdf import cdf_at, empirical_cdf, percentile


class TestEmpiricalCdf:
    def test_simple(self):
        assert empirical_cdf([2.0, 1.0, 2.0]) == [
            (1.0, pytest.approx(1 / 3)),
            (2.0, pytest.approx(1.0)),
        ]

    def test_empty(self):
        assert empirical_cdf([]) == []

    def test_monotone(self):
        points = empirical_cdf([5, 3, 9, 1, 1, 7])
        ys = [y for _, y in points]
        assert ys == sorted(ys)
        assert ys[-1] == 1.0


class TestCdfAt:
    def test_fractions(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert cdf_at(values, 0.5) == 0.0
        assert cdf_at(values, 2.0) == 0.5
        assert cdf_at(values, 10.0) == 1.0

    def test_empty(self):
        assert cdf_at([], 1.0) == 0.0


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 0.5) == 3

    def test_extremes(self):
        values = [10, 20, 30]
        assert percentile(values, 0.0) == 10
        assert percentile(values, 1.0) == 30

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1], 1.5)
