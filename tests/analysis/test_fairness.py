"""Jain index and max/min fairness metrics."""

import pytest

from repro.analysis.fairness import jain_index, max_min_ratio


class TestJain:
    def test_equal_allocation_is_one(self):
        assert jain_index([2.0] * 10) == pytest.approx(1.0)

    def test_single_hog_is_one_over_n(self):
        assert jain_index([5.0, 0.0, 0.0, 0.0, 0.0]) == pytest.approx(0.2)

    def test_monotone_in_evenness(self):
        assert jain_index([1, 1, 1, 3]) > jain_index([1, 1, 1, 9])

    def test_scale_invariant(self):
        assert jain_index([1, 2, 3]) == pytest.approx(jain_index([10, 20, 30]))

    def test_empty_and_zero(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0

    def test_bounds(self):
        values = [0.1, 5.0, 2.0, 0.0, 3.3]
        index = jain_index(values)
        assert 1.0 / len(values) <= index <= 1.0


class TestMaxMin:
    def test_equal(self):
        assert max_min_ratio([3, 3, 3]) == 1.0

    def test_starved_flow_is_infinite(self):
        assert max_min_ratio([1.0, 0.0]) == float("inf")

    def test_ratio(self):
        assert max_min_ratio([1.0, 4.0]) == 4.0

    def test_empty(self):
        assert max_min_ratio([]) == 1.0
