"""Table rendering and the per-key time-series monitor."""

from repro.analysis.report import format_table
from repro.analysis.timeseries import CategorySeriesMonitor
from repro.net.packet import DATA, Packet


def make_packet(flow_id, pid):
    return Packet(flow_id, DATA, 0, pid, ("a", "b"), "a", "b", 0)


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(["name", "x"], [["a", 1.23456], ["bbbb", 2]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.235" in lines[1]
        assert lines[2].startswith("bbbb")

    def test_title(self):
        text = format_table(["h"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert text.splitlines() == ["a  b"]


class TestCategorySeriesMonitor:
    def test_bins_by_key(self):
        mon = CategorySeriesMonitor(key_fn=lambda p: p.path_id, bin_ticks=10)
        for tick in range(25):
            mon.on_service(make_packet(0, (1,)), tick)
        for tick in range(5):
            mon.on_service(make_packet(1, (2,)), tick)
        assert mon.rate_series((1,), 3) == [1.0, 1.0, 0.5]
        assert mon.rate_series((2,), 3) == [0.5, 0.0, 0.0]

    def test_mean_rate(self):
        mon = CategorySeriesMonitor(key_fn=lambda p: p.path_id, bin_ticks=10)
        for tick in range(20):
            mon.on_service(make_packet(0, (1,)), tick)
        assert mon.mean_rate((1,), 2) == 1.0

    def test_window_respected(self):
        mon = CategorySeriesMonitor(
            key_fn=lambda p: p.path_id, bin_ticks=10, start_tick=100
        )
        mon.on_service(make_packet(0, (1,)), 50)
        assert mon.rate_series((1,), 1) == [0.0]

    def test_unknown_key_gives_zeros(self):
        mon = CategorySeriesMonitor(key_fn=lambda p: p.path_id, bin_ticks=10)
        assert mon.rate_series((9,), 2) == [0.0, 0.0]

    def test_base_counters_still_work(self):
        mon = CategorySeriesMonitor(key_fn=lambda p: p.path_id, bin_ticks=10)
        mon.on_service(make_packet(3, (1,)), 0)
        assert mon.service_counts == {3: 1}
