"""Bandwidth accounting by category."""

import pytest

from repro.analysis.accounting import (
    ATTACK,
    LEGIT_IN_ATTACK,
    LEGIT_IN_LEGIT,
    breakdown,
    categorize_flows,
    per_flow_rates,
)
from repro.net.engine import FlowInfo, LinkMonitor
from repro.units import UnitScale


def make_flow(flow_id, pid, is_attack=False):
    return FlowInfo(
        flow_id, f"h{flow_id}", "srv", ("h", "r", "srv"), ("srv", "r", "h"),
        pid, is_attack,
    )


@pytest.fixture
def flows():
    return [
        make_flow(0, (1, 9)),             # legit in legit path
        make_flow(1, (2, 9)),             # legit in attack path
        make_flow(2, (2, 9), is_attack=True),
    ]


class TestCategorize:
    def test_three_categories(self, flows):
        cats = categorize_flows(flows, attack_path_ids=[(2, 9)])
        assert cats[0] == LEGIT_IN_LEGIT
        assert cats[1] == LEGIT_IN_ATTACK
        assert cats[2] == ATTACK

    def test_attack_flag_wins_over_path(self):
        flow = make_flow(0, (1, 9), is_attack=True)
        cats = categorize_flows([flow], attack_path_ids=[])
        assert cats[0] == ATTACK


class TestBreakdown:
    def test_shares_sum_to_utilization(self, flows):
        monitor = LinkMonitor()
        monitor.service_counts = {0: 60, 1: 30, 2: 10}
        result = breakdown(monitor, flows, [(2, 9)], capacity=10.0,
                           window_ticks=10)
        assert result.legit_in_legit == pytest.approx(0.6)
        assert result.legit_in_attack == pytest.approx(0.3)
        assert result.attack == pytest.approx(0.1)
        assert result.utilization == pytest.approx(1.0)
        assert result.legit_total == pytest.approx(0.9)

    def test_unknown_flows_ignored(self, flows):
        monitor = LinkMonitor()
        monitor.service_counts = {0: 50, 99: 1000}
        result = breakdown(monitor, flows, [(2, 9)], capacity=10.0,
                           window_ticks=10)
        assert result.utilization == pytest.approx(0.5)


class TestPerFlowRates:
    def test_rates_in_mbps(self, flows):
        units = UnitScale()  # 10ms ticks, 1500B packets
        monitor = LinkMonitor()
        monitor.service_counts = {0: 100}
        rates = per_flow_rates(monitor, [0, 1], window_ticks=100, units=units)
        # 1 pkt/tick = 1.2 Mbps at this scale
        assert rates[0] == pytest.approx(1.2)
        assert rates[1] == 0.0  # starved flows count as zero

    def test_zero_window_rejected(self):
        with pytest.raises(ValueError):
            per_flow_rates(LinkMonitor(), [0], 0, UnitScale())
