"""Unit conversions: ticks/seconds and packets/Mbps round trips."""

import pytest

from repro.errors import ConfigError
from repro.units import DEFAULT_SCALE, INTERNET_SCALE, UnitScale


class TestTimeConversion:
    def test_seconds_to_ticks_default_scale(self):
        assert DEFAULT_SCALE.seconds_to_ticks(1.0) == 100

    def test_seconds_to_ticks_rounds(self):
        assert DEFAULT_SCALE.seconds_to_ticks(0.014) == 1
        assert DEFAULT_SCALE.seconds_to_ticks(0.016) == 2

    def test_seconds_to_ticks_minimum_one(self):
        assert DEFAULT_SCALE.seconds_to_ticks(0.0001) == 1

    def test_ticks_to_seconds_roundtrip(self):
        ticks = DEFAULT_SCALE.seconds_to_ticks(2.5)
        assert DEFAULT_SCALE.ticks_to_seconds(ticks) == pytest.approx(2.5)

    def test_internet_scale_uses_5ms_ticks(self):
        assert INTERNET_SCALE.seconds_to_ticks(1.0) == 200


class TestBandwidthConversion:
    def test_paper_link_500mbps(self):
        # 500 Mbps at 1500 B packets and 10 ms ticks = ~416.7 pkts/tick
        rate = DEFAULT_SCALE.mbps_to_pkts_per_tick(500.0)
        assert rate == pytest.approx(416.67, rel=1e-3)

    def test_mbps_roundtrip(self):
        rate = DEFAULT_SCALE.mbps_to_pkts_per_tick(2.0)
        assert DEFAULT_SCALE.pkts_per_tick_to_mbps(rate) == pytest.approx(2.0)

    def test_paper_oc768_at_internet_scale(self):
        # paper: 16000 packets/tick at 5 ms ticks corresponds to ~40 Gbps
        mbps = INTERNET_SCALE.pkts_per_tick_to_mbps(16000)
        assert mbps == pytest.approx(38_400, rel=1e-3)

    def test_file_size_12mb(self):
        packets = DEFAULT_SCALE.megabytes_to_packets(12.0)
        assert packets == 8000
        assert DEFAULT_SCALE.packets_to_megabytes(packets) == pytest.approx(12.0)


class TestValidation:
    def test_zero_tick_rejected(self):
        with pytest.raises(ConfigError):
            UnitScale(tick_seconds=0.0)

    def test_negative_packet_bytes_rejected(self):
        with pytest.raises(ConfigError):
            UnitScale(packet_bytes=-1)
