"""Telemetry survives kill/resume: resumed series match uninterrupted ones.

The registry travels two ways: pickled inside the simulator snapshot
(``state`` checkpoints) and as the supervisor's own ``telemetry`` entry.
Either way, a resumed run must keep extending the same counters and
series so the final export equals an uninterrupted run's.
"""

import pytest

from repro.core.config import FLocConfig
from repro.core.router import FLocPolicy
from repro.errors import Interrupted
from repro.runner import CheckpointStore, EngineRun, run_checkpointed
from repro.telemetry import Telemetry, use
from repro.traffic.scenarios import build_tree_scenario


class FlipAfter:
    """Stand-in shutdown flag that trips after N polls (no real signals)."""

    def __init__(self, polls: int) -> None:
        self.polls = polls
        self.seen = 0
        self.signum = 15

    @property
    def requested(self) -> bool:
        self.seen += 1
        return self.seen > self.polls

    def raise_if_requested(self, context: str = "") -> None:
        raise Interrupted(f"simulated SIGTERM during {context}")


def build_run():
    scenario = build_tree_scenario(
        scale_factor=0.05, attack_kind="cbr", attack_rate_mbps=2.0, seed=3
    )
    scenario.attach_policy(FLocPolicy(FLocConfig(s_max=25)))
    total = scenario.units.seconds_to_ticks(3.0)
    return EngineRun(payload=None, engine=scenario.engine, total_ticks=total)


def finalize(run):
    return (run.engine.tick, run.engine.packets_delivered)


def _telemetry_export(tel):
    return (
        sorted(tel.drop_provenance().items()),
        tel.registry.series("engine_delivered_packets").points(),
        tel.registry.gauge("engine_delivered_total_packets").value,
    )


def test_resumed_series_match_uninterrupted(tmp_path):
    # uninterrupted reference
    ref_tel = Telemetry(mode="metrics")
    with use(ref_tel):
        reference = run_checkpointed(
            None, "ref", build_run, finalize, checkpoint_interval=1_000_000
        )

    # killed mid-run, then resumed with a *fresh* session telemetry: the
    # restored snapshot's registry must be adopted, not restarted
    store = CheckpointStore(str(tmp_path / "ckpt"))
    first_tel = Telemetry(mode="metrics")
    with use(first_tel):
        with pytest.raises(Interrupted):
            run_checkpointed(
                store, "unit", build_run, finalize,
                checkpoint_interval=50, shutdown=FlipAfter(2),
            )
    assert store.has("state", "unit")

    resumed_tel = Telemetry(mode="metrics")
    with use(resumed_tel):
        resumed = run_checkpointed(
            store, "unit", build_run, finalize, checkpoint_interval=50
        )

    assert resumed == reference
    assert _telemetry_export(resumed_tel) == _telemetry_export(ref_tel)


def test_resume_with_telemetry_off_stays_off(tmp_path):
    # a run recorded without telemetry resumes cleanly without one
    store = CheckpointStore(str(tmp_path / "ckpt"))
    with pytest.raises(Interrupted):
        run_checkpointed(
            store, "unit", build_run, finalize,
            checkpoint_interval=50, shutdown=FlipAfter(2),
        )
    resumed = run_checkpointed(
        store, "unit", build_run, finalize, checkpoint_interval=50
    )
    reference = run_checkpointed(
        None, "ref", build_run, finalize, checkpoint_interval=1_000_000
    )
    assert resumed == reference
