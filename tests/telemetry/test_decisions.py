"""The pure decision helpers telemetry traces are built from, and the
FLoc decision counters a traced run actually produces."""

import pytest

from repro.core.aggregation import AggregationPlan, plan_moves
from repro.core.config import FLocConfig
from repro.core.conformance import ConformanceTracker
from repro.core.mtd import MtdClassifier
from repro.core.router import FLocPolicy
from repro.core.tokenbucket import PathTokenBucket
from repro.telemetry import Telemetry, use
from repro.traffic.scenarios import build_tree_scenario


class TestPlanMoves:
    def _plans(self):
        old = AggregationPlan.identity([(1,), (2,), (3,)])
        new = AggregationPlan()
        new.add_group(("AGG-A", 0), [(1,)], 0.1)   # (1,) demoted
        new.add_group((2,), [(2,)], 0.4)
        new.add_group(("AGG-L", 0), [(3,)], 0.5)   # (3,) regrouped
        return old, new

    def test_demote_and_regroup(self):
        old, new = self._plans()
        moves = plan_moves(old, new, [(1,), (2,), (3,)])
        kinds = {pid: kind for pid, _, _, kind in moves}
        assert kinds == {(1,): "demote", (3,): "regroup"}

    def test_promote_is_the_reverse(self):
        old, new = self._plans()
        moves = plan_moves(new, old, [(1,), (2,), (3,)])
        kinds = {pid: kind for pid, _, _, kind in moves}
        assert kinds[(1,)] == "promote"

    def test_unchanged_paths_produce_no_moves(self):
        plan = AggregationPlan.identity([(1,), (2,)])
        assert plan_moves(plan, plan, [(1,), (2,)]) == []


class TestClassifiers:
    def test_conformance_labels(self):
        assert ConformanceTracker.classify_value(0.3, 0.5) == "attack"
        assert ConformanceTracker.classify_value(0.5, 0.5) == "legit"
        tracker = ConformanceTracker(beta=0.5)
        tracker.update((1,), n_flows=10, n_attack=10)
        assert tracker.classify((1,), threshold=0.8) == "attack"
        assert tracker.classify((2,), threshold=0.8) == "legit"

    def test_mtd_classification_precedence(self):
        clf = MtdClassifier(
            attack_mtd_fraction=0.5, block_mtd_fraction=1.0 / 64.0
        )
        ref = 64.0
        assert clf.classification(0.5, ref) == "block"
        assert clf.classification(16.0, ref) == "attack"
        assert clf.classification(60.0, ref) == "benign"


class TestTokenBucketCounters:
    def test_requests_and_denials_tally(self):
        bucket = PathTokenBucket(bandwidth=2.0, rtt=10.0, n_flows=1.0)
        bucket.tokens = 3.0
        outcomes = [bucket.request() for _ in range(5)]
        assert outcomes.count(True) == 3
        assert bucket.requests_total == 5
        assert bucket.denials_total == 2


class TestLiveDecisionMetrics:
    @pytest.fixture(scope="class")
    def traced(self):
        tel = Telemetry(mode="trace")
        with use(tel):
            scenario = build_tree_scenario(
                scale_factor=0.05, attack_kind="cbr", attack_rate_mbps=2.0,
                seed=3, start_spread_seconds=0.5,
            )
            scenario.attach_policy(FLocPolicy(FLocConfig(s_max=25)))
            scenario.run_seconds(6.0)
        return tel

    def test_token_grants_counted(self, traced):
        assert traced.registry.counter("token_grants_count").value > 0

    def test_mtd_transitions_traced(self, traced):
        # a CBR flood must surface at least one identification event
        assert traced.registry.counter("mtd_transitions_count").value > 0
        kinds = traced.trace.counts_by_kind
        assert kinds.get("mtd_identify", 0) > 0

    def test_queue_depth_histogram_populated(self, traced):
        hist = traced.registry.get("floc_queue_depth_packets")
        assert hist is not None and hist.total > 0

    def test_aggregation_moves_traced_when_plans_change(self, traced):
        # Algorithm 1 runs every refresh; with s_max below the path count
        # the plan must have changed at least once during the flood
        assert traced.registry.counter("aggregation_moves_count").value > 0
