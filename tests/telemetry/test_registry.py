"""Metric primitives and the registry's naming/kind discipline."""

import pickle

import pytest

from repro.errors import ConfigError
from repro.telemetry import (
    BinnedCounter,
    LabeledCounter,
    MetricsRegistry,
    TickSeries,
    validate_metric_name,
)


class TestNames:
    @pytest.mark.parametrize(
        "name",
        [
            "drops_by_cause_packets",
            "engine_run_ticks",
            "fluid_admitted_pkts_per_tick",
            "token_grants_count",
            "legit_share",
            "trace_evictions_events",
            "conformance_ratio",
        ],
    )
    def test_accepts_dimensional_and_dimensionless_suffixes(self, name):
        assert validate_metric_name(name) == name

    @pytest.mark.parametrize(
        "name", ["drops", "queue_depth", "speed_warp", "", "bad name_count"]
    )
    def test_rejects_unsuffixed_or_malformed_names(self, name):
        with pytest.raises(ConfigError):
            validate_metric_name(name)

    def test_registry_validates_on_create(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigError):
            reg.counter("no_suffix_here")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("events_count")
        with pytest.raises(ConfigError):
            reg.gauge("events_count")

    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x_count") is reg.counter("x_count")


class TestPrimitives:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("x_count")
        c.inc()
        c.inc(3)
        assert c.value == 4
        with pytest.raises(ConfigError):
            c.inc(-1)

    def test_labeled_counter_is_a_dict(self):
        lc = LabeledCounter()
        lc.inc("a")
        lc.inc("a", 2)
        lc.inc("b")
        assert lc == {"a": 3, "b": 1}
        assert pickle.loads(pickle.dumps(lc)) == {"a": 3, "b": 1}

    def test_binned_counter_shape(self):
        bc = BinnedCounter()
        bc.observe("legit", 0)
        bc.observe("legit", 0)
        bc.observe("attack", 3)
        assert bc == {"legit": {0: 2}, "attack": {3: 1}}

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("depth_packets", bounds=(1.0, 10.0, 100.0))
        for v in (0.5, 1.0, 5.0, 50.0, 500.0):
            h.observe(v)
        # side="left": a value equal to a bound lands in that bound's slot
        assert list(h.counts) == [2, 1, 1, 1]
        assert h.total == 5
        with pytest.raises(ConfigError):
            reg.histogram("bad_packets", bounds=(3.0, 2.0))

    def test_ring_series_overwrites_oldest(self):
        reg = MetricsRegistry()
        s = reg.series("x_packets", capacity=3)
        for t in range(5):
            s.sample(t, float(t * 10))
        assert s.points() == [(2, 20.0), (3, 30.0), (4, 40.0)]
        assert s.last == (4, 40.0)
        assert len(s) == 3


class TestTickSeries:
    def test_pending_point_flush_semantics(self):
        ts = TickSeries()
        ts.observe(5)
        ts.observe(5)
        assert list(ts) == []  # current tick stays pending
        ts.observe(7)  # next tick finalises the previous point
        assert list(ts) == [(5, 2)]
        ts.flush()
        assert list(ts) == [(5, 2), (7, 1)]
        ts.flush()  # idempotent
        assert list(ts) == [(5, 2), (7, 1)]

    def test_equality_with_plain_list(self):
        ts = TickSeries([(1, 2), (3, 4)])
        assert ts == [(1, 2), (3, 4)]

    def test_pickle_preserves_pending_point(self):
        ts = TickSeries()
        ts.observe(2)
        ts.observe(4, 3)
        clone = pickle.loads(pickle.dumps(ts))
        assert list(clone) == [(2, 1)]
        assert clone.pending_tick == 4
        assert clone.pending_value == 3
        clone.flush()
        assert list(clone) == [(2, 1), (4, 3)]


class TestSnapshot:
    def test_snapshot_is_json_shaped(self):
        reg = MetricsRegistry()
        reg.counter("a_count").inc(2)
        reg.gauge("b_ticks").set(7.0)
        reg.labeled("c_packets").inc("x", 5)
        snap = reg.snapshot()
        assert snap["a_count"] == {"kind": "counter", "value": 2.0}
        assert snap["b_ticks"] == {"kind": "gauge", "value": 7.0}
        assert snap["c_packets"] == {"kind": "labeled", "value": {"x": 5.0}}

    def test_registry_pickles_whole(self):
        reg = MetricsRegistry()
        reg.counter("a_count").inc()
        reg.series("b_packets").sample(3, 1.5)
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.counter("a_count").value == 1
        assert clone.series("b_packets").points() == [(3, 1.5)]
