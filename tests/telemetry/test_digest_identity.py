"""Telemetry is observation-only: results are byte-identical on or off."""

import numpy as np
import pytest

from repro.chaos import AttackerSpec, CampaignSpec, FaultSpec, SloSpec
from repro.chaos.campaign import execute_campaign
from repro.core.config import FLocConfig
from repro.core.router import FLocPolicy
from repro.inet.scenarios import build_internet_scenario
from repro.inet.simulator import FluidSimulator
from repro.telemetry import NULL_TELEMETRY, Telemetry, use
from repro.traffic.scenarios import build_tree_scenario


def _run_packet(tel):
    with use(tel):
        scenario = build_tree_scenario(
            scale_factor=0.05,
            attack_kind="cbr",
            attack_rate_mbps=2.0,
            seed=3,
            start_spread_seconds=0.5,
        )
        policy = FLocPolicy(FLocConfig(s_max=25))
        scenario.attach_policy(policy)
        monitor = scenario.add_target_monitor(start_seconds=2.0)
        scenario.run_seconds(5.0)
    return monitor, policy


def _run_fluid(tel):
    scn = build_internet_scenario(
        n_as=100, n_legit_sources=250, n_legit_ases=25, n_bots=1500,
        target_capacity=150.0, seed=13,
    )
    with use(tel):
        sim = FluidSimulator(scn, strategy="floc", seed=3)
        return sim.run(ticks=120, warmup=50)


class TestPacketEngine:
    def test_monitor_output_bit_identical(self):
        base_mon, base_pol = _run_packet(NULL_TELEMETRY)
        traced_mon, traced_pol = _run_packet(
            Telemetry(mode="trace", profile=True)
        )
        assert traced_mon.service_counts == base_mon.service_counts
        assert traced_mon.drop_counts == base_mon.drop_counts
        assert list(traced_mon.series) == list(base_mon.series)
        assert traced_pol.drop_stats == base_pol.drop_stats


class TestFluidSimulator:
    def test_shares_bit_identical(self):
        base = _run_fluid(NULL_TELEMETRY)
        traced = _run_fluid(Telemetry(mode="trace", profile=True))
        assert np.array_equal(
            np.asarray(base.shares), np.asarray(traced.shares)
        )


class TestChaosDigest:
    @pytest.fixture(scope="class")
    def spec(self):
        return CampaignSpec(
            seed=5,
            simulator="packet",
            warmup_ticks=150,
            window_ticks=100,
            n_windows=3,
            scale=0.05,
            faults=(FaultSpec(kind="router_restart", tick=300),),
            attackers=(
                AttackerSpec(
                    kind="cbr", bots=2, rate_mbps=2.0,
                    mutations=("rerandomize",),
                ),
            ),
            slo=SloSpec(),
        )

    def test_digest_identical_with_full_tracing(self, spec):
        base = execute_campaign(spec)
        with use(Telemetry(mode="trace", profile=True)):
            traced = execute_campaign(spec)
        assert traced.digest == base.digest
        assert traced.windows == base.windows

    def test_provenance_is_deterministic(self, spec):
        a = execute_campaign(spec)
        b = execute_campaign(spec)
        assert a.drop_provenance == b.drop_provenance
        assert a.drop_provenance  # the flood produced attributed drops
