"""Decision-trace events, the drop-cause taxonomy, and the profiler."""

import pickle

import pytest

from repro.errors import ConfigError
from repro.telemetry import DROP_CAUSES, TickProfiler, TraceLog, precedence


class TestDropCauses:
    def test_pipeline_order(self):
        # §V admission pipeline: capability checks, then preferential
        # drop of identified attack flows, then the congestion-mode
        # stages, with queue overflow as the terminal resort
        assert DROP_CAUSES == (
            "spoofed",
            "blocked",
            "preferential",
            "token",
            "random",
            "overflow",
            "dead_link",
        )
        ranks = [precedence(cause) for cause in DROP_CAUSES]
        assert ranks == sorted(ranks)

    def test_precedence_relations(self):
        assert precedence("spoofed") < precedence("preferential")
        assert precedence("preferential") < precedence("token")
        assert precedence("token") < precedence("overflow")

    def test_unknown_cause_raises(self):
        with pytest.raises(ConfigError):
            precedence("cosmic_ray")


class TestTraceLog:
    def test_emit_and_filter(self):
        log = TraceLog()
        log.emit(3, "drop", "policy", cause="token")
        log.emit(3, "mtd_block", "policy", unit="(1, 2)")
        log.emit(4, "drop", "policy", cause="overflow")
        assert log.emitted_total == 3
        assert log.counts_by_kind == {"drop": 2, "mtd_block": 1}
        assert [e.tick for e in log.events("drop")] == [3, 4]

    def test_bounded_with_exact_totals(self):
        log = TraceLog(max_events=4)
        for tick in range(10):
            log.emit(tick, "drop", "policy", cause="token")
        assert len(log) == 4
        assert log.emitted_total == 10
        assert log.evicted_total == 6
        assert [e.tick for e in log.events()] == [6, 7, 8, 9]

    def test_to_dict_folds_tuples_and_sets(self):
        log = TraceLog()
        event = log.emit(
            2, "mtd_identify", "policy", path_id=(4, 2, 1), flows={3, 1}
        )
        d = event.to_dict()
        assert d["tick"] == 2
        assert d["path_id"] == [4, 2, 1]
        assert d["flows"] == [1, 3]

    def test_events_pickle(self):
        log = TraceLog()
        log.emit(1, "drop", "policy", cause="token")
        clone = pickle.loads(pickle.dumps(log))
        assert clone.emitted_total == 1
        assert clone.events()[0].data == {"cause": "token"}


class TestTickProfiler:
    def test_lap_accumulates_and_chains(self):
        prof = TickProfiler()
        t0 = prof.start()
        t1 = prof.lap("policy", t0)
        prof.lap("queueing", t1)
        prof.tick_done()
        assert set(prof.totals_seconds) == {"policy", "queueing"}
        assert all(v >= 0.0 for v in prof.totals_seconds.values())
        assert prof.ticks_profiled == 1
        fractions = prof.breakdown()
        assert fractions and abs(sum(fractions.values()) - 1.0) < 1e-9

    def test_pickle_erases_wall_clock_state(self):
        # checkpoints and digests must never observe host speed
        prof = TickProfiler()
        t0 = prof.start()
        prof.lap("policy", t0)
        prof.tick_done()
        clone = pickle.loads(pickle.dumps(prof))
        assert clone.totals_seconds == {}
        assert clone.ticks_profiled == 0
