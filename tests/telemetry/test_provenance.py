"""Drop provenance: every engine drop carries exactly one traced cause.

A seeded two-domain scenario (legitimate TCP plus CBR attackers behind
one domain) runs under FLoc with full tracing; the traced tallies must
agree exactly with both the policy's own ``drop_stats`` bookkeeping and
the engine's per-link drop totals — no drop untraced, none
double-counted — and every cause must sit in the §V pipeline order.
"""

import pytest

from repro.core.config import FLocConfig
from repro.core.router import FLocPolicy
from repro.telemetry import DROP_CAUSES, Telemetry, precedence, use
from repro.traffic.scenarios import build_tree_scenario


@pytest.fixture(scope="module")
def traced_run():
    tel = Telemetry(mode="trace", profile=False)
    with use(tel):
        scenario = build_tree_scenario(
            scale_factor=0.05,
            attack_kind="cbr",
            attack_rate_mbps=2.0,
            seed=3,
            start_spread_seconds=0.5,
        )
        policy = FLocPolicy(FLocConfig(s_max=25))
        scenario.attach_policy(policy)
        scenario.run_seconds(6.0)
    return tel, scenario, policy


class TestEveryDropHasOneCause:
    def test_cause_labels_are_known(self, traced_run):
        tel, _, _ = traced_run
        for event in tel.trace.events("drop"):
            assert event.data["cause"] in DROP_CAUSES

    def test_traced_count_equals_engine_drops(self, traced_run):
        tel, scenario, _ = traced_run
        engine_drops = sum(
            link.dropped_total for link in scenario.engine.topology.links()
        )
        counter = tel.registry.labeled("drops_by_cause_packets")
        assert sum(counter.values()) == engine_drops
        assert tel.trace.counts_by_kind.get("drop", 0) == engine_drops

    def test_tallies_match_policy_drop_stats(self, traced_run):
        # the FLoc link is the only drop site in this topology, so the
        # policy's own per-cause bookkeeping and the traced provenance
        # must agree cause by cause
        tel, _, policy = traced_run
        counter = tel.registry.labeled("drops_by_cause_packets")
        for cause, n in policy.drop_stats.items():
            assert counter.get(cause, 0) == n, cause

    def test_some_drops_happened(self, traced_run):
        # the scenario is a flood: an empty trace would mean the
        # instrumentation is dead, not that FLoc is perfect
        tel, _, _ = traced_run
        assert tel.trace.counts_by_kind.get("drop", 0) > 0

    def test_provenance_view_matches_counter(self, traced_run):
        tel, _, _ = traced_run
        counter = tel.registry.labeled("drops_by_cause_packets")
        assert tel.drop_provenance() == {
            str(k): float(v) for k, v in counter.items()
        }


class TestPipelinePrecedence:
    def test_section_v_ordering(self, traced_run):
        # capability/identification stages precede the congestion-mode
        # stages; the queue tail is always last
        tel, _, _ = traced_run
        seen = {e.data["cause"] for e in tel.trace.events("drop")}
        for cause in seen:
            assert precedence(cause) <= precedence("dead_link")
        assert precedence("preferential") < precedence("token")
        assert precedence("token") < precedence("overflow")

    def test_events_are_tick_keyed_and_monotone(self, traced_run):
        tel, _, _ = traced_run
        ticks = [e.tick for e in tel.trace.events("drop")]
        assert ticks == sorted(ticks)
