"""RED-PD: drop-history identification and preferential dropping."""

import pytest

from repro.baselines.red_pd import RedPdPolicy
from tests.baselines.test_red import red_engine


class TestIdentification:
    def test_high_rate_flow_monitored(self):
        engine, policy, sources = red_engine(
            capacity=4.0, n_tcp=4, cbr_rate=3.0,
            policy=RedPdPolicy(interval_ticks=30),
        )
        engine.run(2000)
        cbr_flow_id = sources[-1].flow.flow_id
        assert cbr_flow_id in policy.monitored

    def test_monitored_flow_rate_limited(self):
        engine, policy, sources = red_engine(
            capacity=4.0, n_tcp=4, cbr_rate=3.0,
            policy=RedPdPolicy(interval_ticks=30),
        )
        monitor = engine.add_monitor("r0", "r1")
        engine.run(3000)
        cbr_flow_id = sources[-1].flow.flow_id
        cbr_rate = monitor.service_counts.get(cbr_flow_id, 0) / 3000.0
        # the 3.0 pkt/tick aggressor is pushed toward the fair rate (0.8)
        assert cbr_rate < 1.8
        assert policy.prefilter_drops > 0

    def test_drop_prob_settles_at_working_level(self):
        """The adaptive drop probability oscillates around the level that
        pins the aggressor near the target rate: it must stay engaged
        (well above zero) for as long as the flow keeps blasting."""
        engine, policy, sources = red_engine(
            capacity=4.0, n_tcp=4, cbr_rate=3.0,
            policy=RedPdPolicy(interval_ticks=30),
        )
        cbr_flow_id = sources[-1].flow.flow_id
        engine.run(1200)
        assert cbr_flow_id in policy.monitored
        samples = []
        for _ in range(8):
            engine.run(300)
            mon = policy.monitored.get(cbr_flow_id)
            samples.append(mon.drop_prob if mon else 0.0)
        assert sum(samples) / len(samples) > 0.15

    def test_tcp_flows_eventually_released(self):
        # without an aggressor, any monitored TCP flow must be released
        engine, policy, _ = red_engine(
            capacity=3.0, n_tcp=6, policy=RedPdPolicy(interval_ticks=30)
        )
        engine.run(4000)
        # no flow should be stuck at high drop probability
        for mon in policy.monitored.values():
            assert mon.drop_prob < 0.5

    def test_legit_flows_keep_most_bandwidth(self):
        engine, policy, sources = red_engine(
            capacity=4.0, n_tcp=4, cbr_rate=3.0,
            policy=RedPdPolicy(interval_ticks=30),
        )
        monitor = engine.add_monitor("r0", "r1")
        engine.run(3000)
        cbr_flow_id = sources[-1].flow.flow_id
        total = monitor.total_serviced
        cbr = monitor.service_counts.get(cbr_flow_id, 0)
        assert (total - cbr) / total > 0.5
