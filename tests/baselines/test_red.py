"""RED queue behaviour."""

import pytest

from repro.baselines.red import RedPolicy
from repro.net.engine import Engine
from repro.net.topology import Topology
from repro.tcp.source import TcpSource
from repro.traffic.cbr import CbrSource


def red_engine(capacity=5.0, buffer=100, n_tcp=4, cbr_rate=None, seed=2,
               policy=None):
    topo = Topology()
    for i in range(n_tcp + (1 if cbr_rate else 0)):
        topo.add_duplex_link(f"h{i}", "r0", capacity=None)
    topo.add_duplex_link("r0", "r1", capacity=capacity, buffer=buffer)
    topo.add_duplex_link("r1", "srv", capacity=None)
    policy = policy or RedPolicy()
    topo.set_policy("r0", "r1", policy)
    engine = Engine(topo, seed=seed)
    sources = []
    for i in range(n_tcp):
        flow = engine.open_flow(f"h{i}", "srv", path_id=(1,))
        src = TcpSource(flow, start_tick=3 * i)
        engine.add_source(src)
        sources.append(src)
    if cbr_rate:
        flow = engine.open_flow(f"h{n_tcp}", "srv", path_id=(1,),
                                is_attack=True)
        src = CbrSource(flow, rate=cbr_rate)
        engine.add_source(src)
        sources.append(src)
    return engine, policy, sources


class TestRed:
    def test_thresholds_default_from_buffer(self):
        engine, policy, _ = red_engine(buffer=200)
        engine.run(1)
        assert policy.min_th == pytest.approx(40.0)
        assert policy.max_th == pytest.approx(120.0)

    def test_early_drops_under_congestion(self):
        engine, policy, _ = red_engine(capacity=2.0, n_tcp=8)
        engine.run(2000)
        assert policy.early_drops > 0

    def test_no_drops_when_uncongested(self):
        engine, policy, _ = red_engine(capacity=100.0, n_tcp=2)
        engine.run(1000)
        assert policy.early_drops == 0
        assert policy.forced_drops == 0

    def test_standing_queue_kept_below_buffer(self):
        engine, policy, _ = red_engine(capacity=2.0, buffer=100, n_tcp=8)
        engine.run(500)  # let slow-start transients pass
        link = engine.topology.link("r0", "r1")
        samples = []
        for _ in range(100):
            engine.run(10)
            samples.append(len(link.queue))
        # RED keeps the *standing* queue well below the physical buffer
        assert sum(samples) / len(samples) < 80
        assert policy.avg < 90

    def test_full_utilization_under_load(self):
        engine, policy, _ = red_engine(capacity=2.0, n_tcp=8)
        monitor = engine.add_monitor("r0", "r1")
        engine.run(2000)
        assert monitor.total_serviced > 0.85 * 2.0 * 2000

    def test_control_packets_never_red_dropped(self):
        engine, policy, _ = red_engine(capacity=2.0, n_tcp=8)
        engine.run(2000)
        # all sources eventually complete the handshake despite congestion
        assert all(getattr(s, "established", True) for s in engine._sources)
