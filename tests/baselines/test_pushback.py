"""Pushback: aggregate identification, rate limiting, release."""

import pytest

from repro.baselines.pushback import PushbackPolicy
from repro.net.engine import Engine
from repro.net.topology import Topology
from repro.tcp.source import TcpSource
from repro.traffic.cbr import CbrSource


def pushback_engine(attack_rate=5.0, n_tcp=4, capacity=4.0, propagate=False):
    """Two origin domains: AS 1 (legit TCP), AS 2 (CBR bots)."""
    topo = Topology()
    topo.add_duplex_link("up1", "r0", capacity=None)
    topo.add_duplex_link("up2", "r0", capacity=None)
    for i in range(n_tcp):
        topo.add_duplex_link(f"h{i}", "up1", capacity=None)
    topo.add_duplex_link("bot", "up2", capacity=None)
    topo.add_duplex_link("r0", "srv", capacity=capacity, buffer=80)
    policy = PushbackPolicy(interval_ticks=50, propagate=propagate)
    topo.set_policy("r0", "srv", policy)
    engine = Engine(topo, seed=4)
    tcp_flows = []
    for i in range(n_tcp):
        flow = engine.open_flow(f"h{i}", "srv", path_id=(1, 9))
        engine.add_source(TcpSource(flow, start_tick=2 * i))
        tcp_flows.append(flow)
    bot_flow = engine.open_flow("bot", "srv", path_id=(2, 9), is_attack=True)
    engine.add_source(CbrSource(bot_flow, rate=attack_rate))
    return engine, policy, tcp_flows, bot_flow


class TestAggregateControl:
    def test_attack_aggregate_rate_limited(self):
        engine, policy, _, bot_flow = pushback_engine()
        monitor = engine.add_monitor("r0", "srv")
        engine.run(3000)
        assert 2 in policy.limiters  # origin AS of the bot aggregate
        bot_rate = monitor.service_counts.get(bot_flow.flow_id, 0) / 3000.0
        assert bot_rate < 3.0  # well below the offered 5.0

    def test_legit_flows_recover_bandwidth(self):
        engine, policy, tcp_flows, _ = pushback_engine()
        monitor = engine.add_monitor("r0", "srv")
        engine.run(3000)
        legit = sum(monitor.service_counts.get(f.flow_id, 0) for f in tcp_flows)
        assert legit / 3000.0 > 1.2  # legit aggregate gets a real share

    def test_no_limiters_without_congestion(self):
        engine, policy, _, _ = pushback_engine(attack_rate=0.5, capacity=50.0)
        engine.run(2000)
        assert not policy.limiters

    def test_limiter_released_after_attack_stops(self):
        engine, policy, _, _ = pushback_engine()
        engine.run(1500)
        assert policy.limiters
        # silence the bot and let release intervals elapse
        for source in engine._sources:
            if isinstance(source, CbrSource):
                source.stop_tick = engine.tick
        engine.run(3000)
        assert not policy.limiters

    def test_collateral_damage_within_aggregate(self):
        """The paper's critique: Pushback cannot protect legitimate flows
        inside a rate-limited aggregate."""
        engine, policy, _, bot_flow = pushback_engine()
        # add one legitimate flow inside the attack aggregate (AS 2)
        topo = engine.topology
        topo.add_duplex_link("victim", "up2", capacity=None)
        victim_flow = engine.open_flow("victim", "srv", path_id=(2, 9))
        engine.add_source(TcpSource(victim_flow))
        monitor = engine.add_monitor("r0", "srv")
        engine.run(4000)
        victim_rate = monitor.service_counts.get(victim_flow.flow_id, 0) / 4000.0
        fair = 4.0 / 6.0  # capacity over all flows
        assert victim_rate < 0.75 * fair  # squeezed by its aggregate's limit

    def test_propagation_installs_upstream_limiters(self):
        engine, policy, _, _ = pushback_engine(propagate=True)
        engine.run(2000)
        up_link = engine.topology.link("up2", "r0")
        assert up_link.policy is not None
