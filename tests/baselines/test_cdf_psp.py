"""CDF-PSP baseline: history learning and its structural weaknesses."""

import pytest

from repro.baselines.cdf_psp import CdfPspPolicy
from repro.net.engine import Engine
from repro.net.topology import Topology
from repro.tcp.source import TcpSource
from repro.traffic.cbr import CbrSource


def build(attack_starts=1500, attack_rate=5.0, capacity=4.0,
          training_ticks=800):
    """Two domains of TCP flows; bots join domain 2 after training."""
    topo = Topology()
    for i in range(4):
        topo.add_duplex_link(f"h{i}", "r0", capacity=None)
    topo.add_duplex_link("bot", "r0", capacity=None)
    topo.add_duplex_link("r0", "srv", capacity=capacity, buffer=60)
    policy = CdfPspPolicy(training_ticks=training_ticks)
    topo.set_policy("r0", "srv", policy)
    engine = Engine(topo, seed=8)
    tcp_flows = []
    for i in range(4):
        pid = (1, 9) if i < 2 else (2, 9)
        flow = engine.open_flow(f"h{i}", "srv", path_id=pid)
        engine.add_source(TcpSource(flow, start_tick=3 * i))
        tcp_flows.append(flow)
    bot_flow = engine.open_flow("bot", "srv", path_id=(2, 9), is_attack=True)
    engine.add_source(
        CbrSource(bot_flow, rate=attack_rate, start_tick=attack_starts)
    )
    return engine, policy, tcp_flows, bot_flow


class TestCdfPsp:
    def test_history_learned_during_training(self):
        engine, policy, _, _ = build()
        engine.run(1000)
        assert 1 in policy.history and 2 in policy.history
        assert policy.history[1] > 0

    def test_post_training_attack_rate_limited(self):
        engine, policy, tcp_flows, bot_flow = build()
        monitor = engine.add_monitor("r0", "srv")
        engine.run(4000)
        # the bot inflates aggregate 2 far beyond its history: the excess
        # is low priority and mostly dropped under congestion
        bot_rate = monitor.service_counts.get(bot_flow.flow_id, 0) / 4000.0
        assert bot_rate < 3.0
        assert policy.low_priority_drops > 0

    def test_historically_quiet_legit_burst_is_punished(self):
        """The paper's critique: legitimate flows exceeding their path's
        history receive low bandwidth allocations."""
        engine, policy, tcp_flows, _ = build(attack_starts=10_000)
        # new legitimate flow appears *after* training on a fresh domain
        engine.topology.add_duplex_link("late", "r0", capacity=None)
        late_flow = engine.open_flow("late", "srv", path_id=(3, 9))
        engine.add_source(TcpSource(late_flow, start_tick=1200))
        monitor = engine.add_monitor("r0", "srv")
        engine.run(4000)
        late_rate = monitor.service_counts.get(late_flow.flow_id, 0)
        veteran = max(
            monitor.service_counts.get(f.flow_id, 0) for f in tcp_flows
        )
        # with no history, the newcomer is low priority whenever the link
        # is busy: it gets less than established flows
        assert late_rate < veteran

    def test_attack_on_high_history_path_inherits_allocation(self):
        """Critique 2: history is not legitimacy — a bot on a path with a
        fat historical profile rides that profile."""
        engine, policy, _, bot_flow = build(attack_starts=1500)
        engine.run(1400)  # training saw healthy domain-2 traffic
        history_before = policy.history[2]
        monitor = engine.add_monitor("r0", "srv")
        engine.run(2000)
        bot = monitor.service_counts.get(bot_flow.flow_id, 0) / 2000.0
        # the bot gets at least the domain's historical rate
        assert bot >= 0.5 * history_before
