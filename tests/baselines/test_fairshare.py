"""Oracle per-flow fairness (FF) baseline."""

import pytest

from repro.baselines.fairshare import FairSharePolicy
from repro.net.engine import Engine
from repro.net.topology import Topology
from repro.tcp.source import TcpSource
from repro.traffic.cbr import CbrSource


def ff_engine(n_tcp=3, n_bots=3, bot_rate=4.0, capacity=6.0):
    topo = Topology()
    for i in range(n_tcp):
        topo.add_duplex_link(f"h{i}", "r0", capacity=None)
    for i in range(n_bots):
        topo.add_duplex_link(f"b{i}", "r0", capacity=None)
    topo.add_duplex_link("r0", "srv", capacity=capacity, buffer=60)
    policy = FairSharePolicy()
    topo.set_policy("r0", "srv", policy)
    engine = Engine(topo, seed=6)
    tcp_flows, bot_flows = [], []
    for i in range(n_tcp):
        flow = engine.open_flow(f"h{i}", "srv", path_id=(1,))
        engine.add_source(TcpSource(flow, start_tick=2 * i))
        tcp_flows.append(flow)
    for i in range(n_bots):
        flow = engine.open_flow(f"b{i}", "srv", path_id=(2,), is_attack=True)
        engine.add_source(CbrSource(flow, rate=bot_rate))
        bot_flows.append(flow)
    return engine, policy, tcp_flows, bot_flows


class TestFairShare:
    def test_fair_rate_derived_from_flow_table(self):
        engine, policy, _, _ = ff_engine()
        engine.run(1)
        assert policy.fair_rate == pytest.approx(6.0 / 6.0)

    def test_bots_capped_near_fair_share(self):
        engine, policy, _, bot_flows = ff_engine()
        monitor = engine.add_monitor("r0", "srv")
        engine.run(2000)
        for flow in bot_flows:
            rate = monitor.service_counts.get(flow.flow_id, 0) / 2000.0
            assert rate < 1.6  # offered 4.0, fair 1.0 (+ idle leftovers)

    def test_legit_flows_get_at_least_attack_per_flow(self):
        engine, policy, tcp_flows, bot_flows = ff_engine()
        monitor = engine.add_monitor("r0", "srv")
        engine.run(3000)
        mean = lambda flows: sum(
            monitor.service_counts.get(f.flow_id, 0) for f in flows
        ) / len(flows)
        assert mean(tcp_flows) > 0.6 * mean(bot_flows)

    def test_low_priority_drops_counted(self):
        engine, policy, _, _ = ff_engine()
        engine.run(1000)
        assert policy.low_priority_drops > 0

    def test_oracle_fails_against_many_attack_flows(self):
        """The covert-attack weakness: per-flow fairness hands the link to
        whoever owns the most flows."""
        engine, policy, tcp_flows, bot_flows = ff_engine(
            n_tcp=2, n_bots=20, bot_rate=1.0, capacity=6.0
        )
        monitor = engine.add_monitor("r0", "srv")
        engine.run(2000)
        legit = sum(monitor.service_counts.get(f.flow_id, 0) for f in tcp_flows)
        attack = sum(monitor.service_counts.get(f.flow_id, 0) for f in bot_flows)
        assert attack > 1.5 * legit
