"""BoundedPathState: the fold/seed overflow tier behind the router."""

import pickle

import pytest

from repro.sketch import BoundedPathState


def bps(width=4096, depth=4):
    return BoundedPathState(width, depth)


class TestFoldSeed:
    def test_never_folded_path_seeds_none(self):
        assert bps().seed_path((1, 2, 3)) is None

    def test_roundtrip_uncollided(self):
        tier = bps()
        tier.fold_path((1, 2), lambda_rate=3.5, rtt_ewma=40.0, conformance=0.9)
        lam, rtt, conf = tier.seed_path((1, 2))
        assert lam == pytest.approx(3.5)
        assert rtt == pytest.approx(40.0)
        assert conf == pytest.approx(0.9)

    def test_none_conformance_not_folded(self):
        tier = bps()
        tier.fold_path((1,), lambda_rate=1.0, rtt_ewma=10.0, conformance=None)
        lam, rtt, conf = tier.seed_path((1,))
        assert lam == pytest.approx(1.0)
        assert conf is None

    def test_repeated_folds_average(self):
        tier = bps()
        tier.fold_path((1,), 2.0, 10.0, 0.5)
        tier.fold_path((1,), 4.0, 30.0, 0.7)
        lam, rtt, conf = tier.seed_path((1,))
        assert lam == pytest.approx(3.0)
        assert rtt == pytest.approx(20.0)
        assert conf == pytest.approx(0.6)

    def test_lambda_seed_clamped_nonnegative(self):
        tier = bps()
        tier.fold_path((1,), -2.0, 10.0, None)
        lam, _, _ = tier.seed_path((1,))
        assert lam == 0.0

    def test_counters(self):
        tier = bps()
        assert tier.stats()["folds"] == 0.0
        tier.fold_path((1,), 1.0, 1.0, None)
        tier.seed_path((1,))
        stats = tier.stats()
        assert stats["folds"] == 1.0
        assert stats["revivals"] == 1.0

    def test_collisions_counted_under_pressure(self):
        tier = bps(width=8, depth=1)
        for pid in range(500):
            tier.fold_path((pid,), 1.0, 1.0, None)
        assert tier.collisions_total > 0

    def test_fold_error_accumulates_under_pressure(self):
        tier = bps(width=8, depth=1)
        for pid in range(100):
            tier.fold_path((pid,), float(pid), 1.0, None)
        assert tier.fold_abs_error_total > 0.0


class TestBucketFill:
    def test_unseen_bucket_none(self):
        assert bps().seed_bucket(((1,),)) is None

    def test_fill_roundtrip_and_clamp(self):
        tier = bps()
        tier.fold_bucket("g1", 0.4)
        assert tier.seed_bucket("g1") == pytest.approx(0.4)
        tier.fold_bucket("g2", 7.0)
        assert tier.seed_bucket("g2") == 1.0
        tier.fold_bucket("g3", -1.0)
        assert tier.seed_bucket("g3") == 0.0

    def test_bucket_and_path_namespaces_distinct(self):
        # the same raw key folded as a path must not look like a seen
        # bucket, and vice versa
        tier = bps()
        tier.fold_path((9,), 1.0, 1.0, None)
        assert tier.seed_bucket((9,)) is None


class TestUnitDrops:
    def test_estimate_after_fold(self):
        tier = bps()
        tier.fold_unit_drops("unit", 5.0)
        assert tier.unit_drop_estimate("unit") >= 5.0

    def test_zero_drops_not_folded(self):
        tier = bps()
        tier.fold_unit_drops("unit", 0.0)
        assert tier.unit_drop_estimate("unit") == 0.0

    def test_decay(self):
        tier = bps()
        tier.fold_unit_drops("unit", 8.0)
        tier.decay_drops(0.5)
        assert tier.unit_drop_estimate("unit") == pytest.approx(4.0)


class TestAccounting:
    def test_memory_fixed_regardless_of_folds(self):
        tier = bps(width=256)
        before = tier.memory_bytes
        for pid in range(5_000):
            tier.fold_path((pid,), 1.0, 1.0, 0.5)
            tier.fold_bucket(pid, 0.5)
            tier.fold_unit_drops(pid, 1.0)
        assert tier.memory_bytes == before

    def test_stats_keys(self):
        stats = bps().stats()
        assert set(stats) == {
            "folds",
            "revivals",
            "collisions",
            "fold_abs_error_total",
            "fill_ratio",
            "memory_bytes",
        }

    def test_picklable(self):
        tier = bps(width=64)
        tier.fold_path((1,), 2.0, 3.0, 0.5)
        clone = pickle.loads(pickle.dumps(tier))
        lam, _, _ = clone.seed_path((1,))
        assert lam == pytest.approx(2.0)
