"""Count-min / value sketch primitives: accuracy, bounds, determinism."""

import copy
import pickle

import pytest

from repro.errors import ConfigError
from repro.sketch import CountMinSketch, ValueSketch, sketch_indices
from repro.sketch.cms import MAX_DEPTH, MIN_WIDTH


class TestIndices:
    def test_deterministic_across_calls(self):
        assert sketch_indices(("a", 1), 4, 128) == sketch_indices(
            ("a", 1), 4, 128
        )

    def test_rows_within_width(self):
        for key in range(200):
            assert all(0 <= j < 64 for j in sketch_indices(key, 4, 64))

    def test_depth_yields_that_many_rows(self):
        assert len(sketch_indices("k", 7, 64)) == 7

    def test_distinct_keys_rarely_fully_collide(self):
        seen = {sketch_indices(k, 4, 4096) for k in range(1000)}
        assert len(seen) == 1000


class TestCountMinSketch:
    def test_geometry_validation(self):
        with pytest.raises(ConfigError):
            CountMinSketch(MIN_WIDTH - 1)
        with pytest.raises(ConfigError):
            CountMinSketch(64, depth=0)
        with pytest.raises(ConfigError):
            CountMinSketch(64, depth=MAX_DEPTH + 1)

    def test_exact_when_uncollided(self):
        cms = CountMinSketch(4096, depth=4)
        for k in range(50):
            cms.add(k, float(k + 1))
        for k in range(50):
            assert cms.estimate(k) == pytest.approx(float(k + 1))

    def test_one_sided_error(self):
        # overestimate only: estimate >= true count, even under heavy
        # collision pressure
        cms = CountMinSketch(8, depth=2)
        truth = {}
        for k in range(200):
            cms.add(k, 1.0)
            truth[k] = truth.get(k, 0.0) + 1.0
        for k, true_count in truth.items():
            assert cms.estimate(k) >= true_count

    def test_conservative_tighter_than_plain(self):
        plain = CountMinSketch(32, depth=2, conservative=False)
        cons = CountMinSketch(32, depth=2, conservative=True)
        for k in range(500):
            plain.add(k % 100, 1.0)
            cons.add(k % 100, 1.0)
        plain_err = sum(plain.estimate(k) - 5.0 for k in range(100))
        cons_err = sum(cons.estimate(k) - 5.0 for k in range(100))
        assert cons_err <= plain_err

    def test_add_returns_post_update_estimate(self):
        cms = CountMinSketch(4096)
        assert cms.add("k", 3.0) == pytest.approx(3.0)
        assert cms.add("k", 2.0) == pytest.approx(5.0)

    def test_scale_decays(self):
        cms = CountMinSketch(64)
        cms.add("k", 8.0)
        cms.scale(0.5)
        assert cms.estimate("k") == pytest.approx(4.0)
        with pytest.raises(ConfigError):
            cms.scale(-0.1)

    def test_reset_and_fill_ratio(self):
        cms = CountMinSketch(64)
        assert cms.fill_ratio() == 0.0
        cms.add("k")
        assert cms.fill_ratio() > 0.0
        cms.reset()
        assert cms.estimate("k") == 0.0

    def test_memory_bytes_fixed_by_geometry(self):
        cms = CountMinSketch(128, depth=4)
        before = cms.memory_bytes
        for k in range(10_000):
            cms.add(k)
        assert cms.memory_bytes == before == 128 * 4 * 8

    def test_picklable(self):
        cms = CountMinSketch(64)
        cms.add("k", 7.0)
        clone = pickle.loads(pickle.dumps(cms))
        assert clone.estimate("k") == pytest.approx(7.0)


class TestValueSketch:
    def test_exact_when_uncollided(self):
        vs = ValueSketch(4096, depth=4)
        for k in range(50):
            vs.fold(k, float(k) * 0.1)
        for k in range(50):
            assert vs.estimate(k) == pytest.approx(float(k) * 0.1)

    def test_unseen_key_returns_default(self):
        vs = ValueSketch(64)
        assert vs.estimate("missing") is None
        assert vs.estimate("missing", default=1.5) == 1.5

    def test_weighted_mean(self):
        vs = ValueSketch(4096)
        vs.fold("k", 1.0, weight=1.0)
        vs.fold("k", 4.0, weight=3.0)
        assert vs.estimate("k") == pytest.approx(13.0 / 4.0)

    def test_collision_blends_instead_of_inflating(self):
        # under total collision the estimate stays inside the folded
        # value range (a weighted mean), never outside it
        vs = ValueSketch(8, depth=1)
        for k in range(100):
            vs.fold(k, 0.25 if k % 2 else 0.75)
        for k in range(100):
            assert 0.25 <= vs.estimate(k) <= 0.75

    def test_fold_weight_validation(self):
        vs = ValueSketch(64)
        with pytest.raises(ConfigError):
            vs.fold("k", 1.0, weight=0.0)

    def test_collided_detection(self):
        vs = ValueSketch(4096)
        assert not vs.collided("a")
        vs.fold("a", 1.0)
        assert vs.collided("a")

    def test_scale_preserves_mean(self):
        vs = ValueSketch(64)
        vs.fold("k", 0.8)
        vs.scale(0.5)
        assert vs.estimate("k") == pytest.approx(0.8)

    def test_deepcopy_independent(self):
        vs = ValueSketch(64)
        vs.fold("k", 1.0)
        clone = copy.deepcopy(vs)
        clone.fold("k", 3.0)
        assert vs.estimate("k") == pytest.approx(1.0)
