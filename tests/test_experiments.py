"""Experiment runners produce well-formed, shape-correct results.

These run at very small scale — the full-figure reproductions with the
paper's shape assertions are in ``benchmarks/``.
"""

import pytest

from repro.errors import ConfigError
from repro.experiments.common import (
    SCHEMES,
    FunctionalSettings,
    make_policy,
    run_breakdown,
)
from repro.experiments.fig02 import run_fig02
from repro.experiments.fig03 import run_fig03
from repro.experiments.fig04 import run_fig04
from repro.experiments.fig11 import run_fig11, topology_stats
from repro.experiments.fig13 import InternetRunSettings, run_fig13
from repro.inet.scenarios import build_internet_scenario
from repro.traffic.scenarios import build_tree_scenario

TINY = FunctionalSettings(scale=0.05, warmup_seconds=2.0, measure_seconds=3.0,
                          seed=9)


class TestCommon:
    def test_every_scheme_instantiates(self):
        for scheme in SCHEMES:
            assert make_policy(scheme, TINY) is not None

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigError):
            make_policy("tarpit", TINY)

    def test_run_breakdown_fields(self):
        scenario = build_tree_scenario(
            scale_factor=TINY.scale, attack_kind="cbr", seed=9
        )
        result = run_breakdown(scenario, "droptail", TINY)
        assert result.scheme == "droptail"
        assert 0.0 <= result.breakdown.utilization <= 1.01
        assert len(result.legit_in_legit_rates) == sum(
            1
            for f in scenario.legit_flows
            if f.path_id not in set(scenario.attack_path_ids)
        )


class TestSimpleRunners:
    def test_fig02_rows_cover_measure_window(self):
        result = run_fig02(TINY)
        assert len(result.rows) == int(TINY.measure_seconds)
        assert result.service_total > 0

    def test_fig03_result_complete(self):
        result = run_fig03(n_samples=2_000, seed=2)
        assert result.n_samples == 2_000
        assert abs(result.cdf[-1][1] - 1.0) < 1e-9

    def test_fig04_deterministic(self):
        a = run_fig04(n_flows=10, steps=100, seed=3)
        b = run_fig04(n_flows=10, steps=100, seed=3)
        assert a.utilization_partial == b.utilization_partial

    def test_fig04_bad_mode_rejected(self):
        from repro.experiments.fig04 import aggregate_request_series

        with pytest.raises(ValueError):
            aggregate_request_series(5, 10.0, 20, "psychic", 10)


class TestInternetRunners:
    def test_fig11_stats_consistent(self):
        stats = run_fig11(
            "localized", variants=("f-root",), n_as=200,
            n_legit_sources=300, n_bots=2_000, n_legit_ases=40,
        )
        s = stats[0]
        assert s.n_bots == 2_000
        assert s.n_legit_sources == 300
        assert sum(s.depth_histogram.values()) == s.n_as
        assert 0 < s.red_links <= s.total_links

    def test_topology_stats_from_scenario(self):
        scenario = build_internet_scenario(
            n_as=150, n_legit_sources=200, n_bots=1_000, n_legit_ases=30,
            seed=5,
        )
        s = topology_stats(scenario)
        assert s.placement == "localized"
        assert 0.0 <= s.legit_in_attack_as_fraction <= 1.0

    def test_fig13_small_run(self):
        settings = InternetRunSettings(
            n_as=150, n_legit_sources=300, n_legit_ases=30, n_bots=2_000,
            target_capacity=150.0, ticks=80, warmup=40,
            strategies=(("ND", "nd", None), ("NA", "floc", None)),
        )
        result = run_fig13(
            placement="localized", variants=("f-root",), settings=settings
        )
        assert set(result.results) == {("f-root", "ND"), ("f-root", "NA")}
        nd = result.results[("f-root", "ND")]
        na = result.results[("f-root", "NA")]
        assert na.legit_total > nd.legit_total
