"""Kill/resume determinism for tick-level checkpointed runs.

The contract under test: a run interrupted at an arbitrary checkpoint
boundary and resumed from its pickled snapshot produces *bit-identical*
results to an uninterrupted run — for both the packet engine and the
fluid simulator.
"""

import pytest

from repro.core.config import FLocConfig
from repro.core.router import FLocPolicy
from repro.errors import Interrupted
from repro.inet.scenarios import build_internet_scenario
from repro.inet.simulator import FluidSimulator
from repro.runner import CheckpointStore, EngineRun, FluidRun, run_checkpointed
from repro.traffic.scenarios import build_tree_scenario


class FlipAfter:
    """Stand-in shutdown flag that trips after N polls (no real signals)."""

    def __init__(self, polls: int) -> None:
        self.polls = polls
        self.seen = 0
        self.signum = 15

    @property
    def requested(self) -> bool:
        self.seen += 1
        return self.seen > self.polls

    def raise_if_requested(self, context: str = "") -> None:
        raise Interrupted(f"simulated SIGTERM during {context}")


def build_engine_run():
    scenario = build_tree_scenario(
        scale_factor=0.05, attack_kind="cbr", attack_rate_mbps=2.0, seed=3
    )
    scenario.attach_policy(FLocPolicy(FLocConfig(s_max=25)))
    monitor = scenario.add_target_monitor(start_seconds=1.0)
    total = scenario.units.seconds_to_ticks(3.0)
    return EngineRun(payload=monitor, engine=scenario.engine, total_ticks=total)


def finalize_engine(run):
    monitor = run.payload
    return (
        run.engine.tick,
        run.engine.packets_emitted,
        run.engine.packets_delivered,
        sorted(monitor.service_counts.items()),
        sorted(monitor.drop_counts.items()),
    )


def build_fluid_run():
    scenario = build_internet_scenario(
        variant="f-root", n_as=120, n_legit_sources=300, n_legit_ases=30,
        n_bots=2_000, target_capacity=200.0, seed=7,
    )
    sim = FluidSimulator(scenario, strategy="floc", s_max=40, seed=7)
    return FluidRun(sim, ticks=120, warmup=40)


def finalize_fluid(run):
    result = run.sim.finish_run()
    return (result.shares, result.utilization)


@pytest.mark.parametrize(
    "build,finalize",
    [(build_engine_run, finalize_engine), (build_fluid_run, finalize_fluid)],
    ids=["packet-engine", "fluid-simulator"],
)
def test_kill_resume_bit_identical(tmp_path, build, finalize):
    reference = run_checkpointed(
        None, "ref", build, finalize, checkpoint_interval=1_000_000
    )

    store = CheckpointStore(str(tmp_path))
    with pytest.raises(Interrupted):
        run_checkpointed(
            store, "job", build, finalize,
            checkpoint_interval=25, shutdown=FlipAfter(polls=2),
        )
    # the kill left a mid-run snapshot behind
    assert store.has("state", "job")

    resumed = run_checkpointed(
        store, "job", build, finalize, checkpoint_interval=25
    )
    assert resumed == reference
    # completed runs clean up their state snapshot
    assert not store.has("state", "job")


def test_resume_skips_build(tmp_path):
    store = CheckpointStore(str(tmp_path))
    with pytest.raises(Interrupted):
        run_checkpointed(
            store, "job", build_fluid_run, finalize_fluid,
            checkpoint_interval=30, shutdown=FlipAfter(polls=1),
        )

    def exploding_build():
        raise AssertionError("resume must load the snapshot, not rebuild")

    result = run_checkpointed(
        store, "job", exploding_build, finalize_fluid, checkpoint_interval=30
    )
    assert result[1] > 0  # utilization from the resumed simulator


def test_segmented_equals_monolithic_fluid():
    # FluidRun advancing in small segments == one uninterrupted sim.run()
    ref = run_checkpointed(
        None, "a", build_fluid_run, finalize_fluid, checkpoint_interval=7
    )
    mono = run_checkpointed(
        None, "b", build_fluid_run, finalize_fluid, checkpoint_interval=10_000
    )
    assert ref == mono


def test_checkpoint_interval_validated(tmp_path):
    with pytest.raises(ValueError):
        run_checkpointed(
            None, "x", build_fluid_run, finalize_fluid, checkpoint_interval=0
        )
