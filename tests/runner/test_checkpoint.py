"""CheckpointStore: atomicity, integrity, job fingerprinting."""

import json
import os

import pytest

from repro.errors import CheckpointError
from repro.runner import CheckpointStore


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        obj = {"rows": [(1, 2.5), (2, 3.5)], "label": "x"}
        store.save("unit", "fig08:floc@0.4", obj)
        assert store.has("unit", "fig08:floc@0.4")
        assert store.load("unit", "fig08:floc@0.4") == obj

    def test_kinds_are_separate_namespaces(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save("unit", "a", 1)
        store.save("state", "a", 2)
        assert store.load("unit", "a") == 1
        assert store.load("state", "a") == 2
        assert store.names("unit") == ["a"]
        assert store.names("state") == ["a"]

    def test_missing_entry_raises_keyerror(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        assert not store.has("unit", "nope")
        with pytest.raises(KeyError):
            store.load("unit", "nope")

    def test_reopen_sees_entries(self, tmp_path):
        CheckpointStore(str(tmp_path)).save("unit", "a", [1, 2])
        assert CheckpointStore(str(tmp_path)).load("unit", "a") == [1, 2]

    def test_delete(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save("state", "a", 1)
        store.delete("state", "a")
        assert not store.has("state", "a")
        store.delete("state", "a")  # idempotent

    def test_unknown_kind_rejected(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        with pytest.raises(CheckpointError):
            store.save("junk", "a", 1)
        with pytest.raises(CheckpointError):
            store.names("junk")

    def test_unpicklable_object_rejected(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        with pytest.raises(CheckpointError, match="not picklable"):
            store.save("unit", "a", lambda: None)


class TestIntegrity:
    def test_corrupt_file_detected(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save("unit", "a", {"x": 1})
        entry = store._manifest["entries"]["unit/a"]
        with open(tmp_path / entry["file"], "ab") as fh:
            fh.write(b"garbage")
        with pytest.raises(CheckpointError, match="corrupt"):
            CheckpointStore(str(tmp_path)).load("unit", "a")

    def test_vanished_file_detected(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save("unit", "a", {"x": 1})
        entry = store._manifest["entries"]["unit/a"]
        os.unlink(tmp_path / entry["file"])
        reopened = CheckpointStore(str(tmp_path))
        assert not reopened.has("unit", "a")
        with pytest.raises(CheckpointError, match="vanished"):
            reopened.load("unit", "a")

    def test_unmanifested_file_ignored(self, tmp_path):
        # a torn write leaves a file the manifest never mentions
        (tmp_path / "unit-orphan-00000000.pkl").write_bytes(b"partial")
        store = CheckpointStore(str(tmp_path))
        assert store.names("unit") == []

    def test_malformed_manifest_raises(self, tmp_path):
        (tmp_path / "MANIFEST.json").write_text("{not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            CheckpointStore(str(tmp_path))

    def test_no_temp_files_left_behind(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        for i in range(5):
            store.save("unit", f"u{i}", list(range(i)))
        leftovers = [p for p in os.listdir(tmp_path) if p.startswith(".tmp-")]
        assert leftovers == []

    def test_manifest_records_sha_and_size(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save("unit", "a", "payload")
        manifest = json.loads((tmp_path / "MANIFEST.json").read_text())
        entry = manifest["entries"]["unit/a"]
        assert len(entry["sha256"]) == 64
        assert entry["bytes"] > 0


class TestJobFingerprint:
    def test_first_use_stores_fingerprint(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.check_job({"figure": "fig08", "seed": 1})
        assert store.job == {"figure": "fig08", "seed": 1}

    def test_same_fingerprint_accepted(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.check_job({"figure": "fig08", "seed": 1})
        CheckpointStore(str(tmp_path)).check_job({"figure": "fig08", "seed": 1})

    def test_mismatch_rejected(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.check_job({"figure": "fig08", "seed": 1})
        with pytest.raises(CheckpointError, match="different job"):
            CheckpointStore(str(tmp_path)).check_job(
                {"figure": "fig08", "seed": 2}
            )

    def test_reset_clears_everything(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.check_job({"figure": "fig08"})
        store.save("unit", "a", 1)
        store.reset()
        assert store.job is None
        assert store.names("unit") == []
        assert not store.has("unit", "a")
