"""SupervisedRunner: retries, deadlines, shutdown, salvage."""

import pytest

from repro.errors import (
    ConfigError,
    DeadlineExceeded,
    InvariantViolation,
)
from repro.runner import (
    CheckpointStore,
    GracefulShutdown,
    RetryPolicy,
    SupervisedRunner,
    Watchdog,
)


def make_runner(tmp_path=None, **kwargs):
    kwargs.setdefault("retry", RetryPolicy(max_retries=2, base_delay=0.0))
    kwargs.setdefault("sleep", lambda seconds: None)
    if tmp_path is not None:
        kwargs.setdefault("store", CheckpointStore(str(tmp_path)))
    return SupervisedRunner(**kwargs)


class TestRetry:
    def test_transient_failure_retried(self):
        calls = []

        def flaky(ctx):
            calls.append(1)
            if len(calls) < 3:
                raise RuntimeError("transient")
            return "ok"

        report = make_runner().run_units([("u", flaky)])
        assert report.status == "ok"
        assert report.results["u"] == "ok"
        assert report.outcomes[0].attempts == 3

    def test_retries_bounded(self):
        def always_fails(ctx):
            raise RuntimeError("permanent")

        report = make_runner().run_units([("u", always_fails)])
        assert report.status == "failed"
        assert report.outcomes[0].attempts == 3  # initial + 2 retries
        assert "RuntimeError" in report.outcomes[0].error

    @pytest.mark.parametrize("exc", [
        ConfigError("bad"),
        InvariantViolation("conservation", 5, "off by 7"),
    ])
    def test_deterministic_errors_not_retried(self, exc):
        attempts = []

        def fails(ctx):
            attempts.append(1)
            raise exc

        report = make_runner().run_units([("u", fails)])
        assert report.outcomes[0].status == "failed"
        assert len(attempts) == 1

    def test_backoff_is_deterministic_and_jittered(self):
        policy = RetryPolicy(max_retries=3, base_delay=1.0, seed=7)
        a = policy.backoff("unit-x", 1)
        assert a == policy.backoff("unit-x", 1)  # reproducible
        assert a != policy.backoff("unit-y", 1)  # decorrelated
        assert 0.5 <= a < 1.5
        assert policy.backoff("unit-x", 2) <= 2 * 1.5

    def test_backoff_capped(self):
        policy = RetryPolicy(max_retries=9, base_delay=1.0, max_delay=4.0)
        assert policy.backoff("u", 9) <= 4.0 * 1.5


class TestPartialSalvage:
    def test_one_failure_does_not_sink_the_job(self):
        def bad(ctx):
            raise ConfigError("nope")

        report = make_runner().run_units(
            [("good1", lambda ctx: 1), ("bad", bad), ("good2", lambda ctx: 2)]
        )
        assert report.status == "partial"
        assert report.completed() == ["good1", "good2"]
        assert report.failed() == ["bad"]
        assert report.results == {"good1": 1, "good2": 2}

    def test_all_failures_mean_failed(self):
        def bad(ctx):
            raise ConfigError("nope")

        report = make_runner().run_units([("a", bad), ("b", bad)])
        assert report.status == "failed"


class TestResume:
    def test_completed_units_skipped(self, tmp_path):
        calls = []

        def unit(ctx):
            calls.append(ctx.name)
            return ctx.name.upper()

        units = [("a", unit), ("b", unit)]
        first = make_runner(tmp_path).run_units(units, {"fig": "x"})
        assert first.status == "ok" and calls == ["a", "b"]

        second = make_runner(tmp_path).run_units(units, {"fig": "x"})
        assert second.status == "ok"
        assert calls == ["a", "b"]  # nothing re-ran
        assert [o.status for o in second.outcomes] == ["resumed", "resumed"]
        assert second.results == first.results

    def test_fingerprint_mismatch_refuses(self, tmp_path):
        from repro.errors import CheckpointError

        make_runner(tmp_path).run_units([("a", lambda ctx: 1)], {"seed": 1})
        with pytest.raises(CheckpointError, match="different job"):
            make_runner(tmp_path).run_units([("a", lambda ctx: 1)], {"seed": 2})


class TestWatchdog:
    def test_deadline_between_units(self):
        clock = {"t": 0.0}

        def fake_clock():
            return clock["t"]

        def slow(ctx):
            clock["t"] += 10.0
            return 1

        report = SupervisedRunner(
            deadline_seconds=15.0,
            clock=fake_clock,
            sleep=lambda s: None,
        ).run_units([("a", slow), ("b", slow), ("c", slow)])
        assert report.status == "deadline"
        assert report.completed() == ["a", "b"]  # c never started
        assert "c" not in report.results

    def test_watchdog_check_raises_after_expiry(self):
        clock = {"t": 0.0}
        dog = Watchdog(5.0, clock=lambda: clock["t"])
        dog.check()
        clock["t"] = 6.0
        assert dog.expired
        with pytest.raises(DeadlineExceeded):
            dog.check()

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ConfigError):
            Watchdog(0.0)


class TestShutdown:
    def test_requested_flag_stops_between_units(self, tmp_path):
        ran = []

        def unit(ctx):
            ran.append(ctx.name)
            # simulate a signal arriving while the first unit runs
            ctx.shutdown.requested = True
            ctx.shutdown.signum = 15
            return 1

        report = make_runner(tmp_path).run_units([("a", unit), ("b", unit)])
        assert report.status == "interrupted"
        assert ran == ["a"]
        assert report.completed() == ["a"]
        # the completed unit's result was checkpointed before the stop
        assert CheckpointStore(str(tmp_path)).load("unit", "a") == 1

    def test_handlers_restored_on_exit(self):
        import signal

        before = signal.getsignal(signal.SIGTERM)
        with GracefulShutdown():
            assert signal.getsignal(signal.SIGTERM) != before
        assert signal.getsignal(signal.SIGTERM) == before
