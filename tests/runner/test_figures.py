"""Figure jobs and the supervised CLI: decomposition, resume, exit codes."""

import os

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.experiments.common import FunctionalSettings
from repro.runner import (
    CheckpointStore,
    SupervisedRunner,
    build_figure_job,
)

SMALL = FunctionalSettings(
    scale=0.05, warmup_seconds=1.0, measure_seconds=2.0, seed=1
)


class TestRegistry:
    def test_unknown_figure_rejected(self):
        with pytest.raises(ConfigError, match="unknown figure"):
            build_figure_job("fig99", SMALL)

    def test_every_figure_has_units_and_fingerprint(self):
        for figure in ("fig02", "fig03", "fig04", "fig06", "fig07", "fig08",
                       "fig09", "fig10", "fig11", "fig13", "fig14", "fig15",
                       "faults"):
            job = build_figure_job(figure, SMALL)
            assert job.units, figure
            assert job.fingerprint["figure"] == figure

    def test_sweep_figures_decompose_per_cell(self):
        job = build_figure_job("fig08", SMALL)
        # 3 schemes x 6 rates
        assert len(job.units) == 18

    def test_internet_units_cover_variants_and_strategies(self):
        job = build_figure_job("fig13", SMALL, variants=("f-root", "jpn"))
        names = [name for name, _ in job.units]
        assert len(names) == 2 * 5
        assert "fig13:jpn:A-lo" in names

    def test_fingerprint_excludes_sanitize(self):
        # invariant checking observes a run without changing its numbers,
        # so checkpoints written with and without it must interoperate
        plain = build_figure_job("fig03", SMALL)
        strict = build_figure_job(
            "fig03",
            FunctionalSettings(
                scale=0.05, warmup_seconds=1.0, measure_seconds=2.0, seed=1,
                sanitize="strict",
            ),
        )
        assert plain.fingerprint == strict.fingerprint

    def test_finalize_tolerates_missing_units(self):
        job = build_figure_job("fig06", SMALL)
        output = job.finalize({})
        assert output.rows == []
        assert len(output.notes) == len(job.units)


class TestJobExecution:
    def test_fig03_job_matches_direct_run(self, tmp_path):
        from repro.experiments.fig03 import run_fig03

        job = build_figure_job("fig03", SMALL)
        report = SupervisedRunner(
            store=CheckpointStore(str(tmp_path))
        ).run_units(job.units, job.fingerprint)
        assert report.ok
        output = job.finalize(report.results)
        assert output.rows == sorted(
            run_fig03(seed=SMALL.seed).mode_fractions.items()
        )

    def test_resumed_job_reuses_results(self, tmp_path):
        job = build_figure_job("fig03", SMALL)
        store = CheckpointStore(str(tmp_path))
        first = SupervisedRunner(store=store).run_units(
            job.units, job.fingerprint
        )
        second = SupervisedRunner(
            store=CheckpointStore(str(tmp_path))
        ).run_units(job.units, job.fingerprint)
        assert [o.status for o in second.outcomes] == ["resumed"]
        assert job.finalize(second.results).rows == \
            job.finalize(first.results).rows


class TestCli:
    def test_csv_written_into_directory(self, tmp_path, capsys):
        csv_dir = tmp_path / "out"
        os.makedirs(csv_dir)
        assert main(["run", "fig03", "--csv", str(csv_dir)]) == 0
        assert (csv_dir / "fig03.csv").exists()

    def test_failing_units_exit_nonzero(self, capsys):
        # a bogus skitter variant makes every fig13 unit raise ConfigError
        code = main(["run", "fig13", "--variants", "bogus-map"])
        assert code == 1
        err = capsys.readouterr().err
        assert "failed" in err and "ConfigError" in err

    def test_checkpoint_then_resume_is_identical(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        assert main(["run", "fig03", "--checkpoint-dir", ckpt]) == 0
        first = capsys.readouterr().out
        assert main(["run", "fig03", "--resume", ckpt]) == 0
        assert capsys.readouterr().out == first

    def test_resume_with_other_settings_exits_2(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        assert main(["run", "fig03", "--checkpoint-dir", ckpt]) == 0
        capsys.readouterr()
        assert main(["run", "fig03", "--seed", "9", "--resume", ckpt]) == 2
        assert "different job" in capsys.readouterr().err

    def test_sanitize_strict_accepted(self, capsys):
        assert main(["run", "fig03", "--sanitize", "strict"]) == 0

    def test_deadline_zero_is_config_error(self, capsys):
        assert main(["run", "fig03", "--deadline", "0"]) == 2


class TestSatelliteRegressions:
    def test_make_policy_does_not_mutate_caller_config(self):
        from repro.core.config import FLocConfig
        from repro.experiments.common import make_policy

        cfg = FLocConfig(s_max=25)
        before = (cfg.s_max, cfg.min_guaranteed_share,
                  cfg.preferential_drop, cfg.use_drop_filter)
        for scheme in ("floc", "floc-noagg", "floc-nopref", "floc-filter"):
            make_policy(scheme, SMALL, cfg)
        assert (cfg.s_max, cfg.min_guaranteed_share,
                cfg.preferential_drop, cfg.use_drop_filter) == before

    @pytest.mark.parametrize("kwargs", [
        {"scale": 0.0},
        {"scale": -1.0},
        {"warmup_seconds": 0.0},
        {"measure_seconds": -2.0},
        {"seed": 1.5},
        {"seed": True},
        {"s_max": 0},
        {"sanitize": "paranoid"},
    ])
    def test_functional_settings_validated(self, kwargs):
        with pytest.raises(ConfigError):
            FunctionalSettings(**kwargs)

    def test_functional_settings_valid_values_accepted(self):
        settings = FunctionalSettings(
            scale=0.5, warmup_seconds=1.0, measure_seconds=2.0, seed=3,
            s_max=10, sanitize="record",
        )
        assert settings.total_seconds == 3.0
