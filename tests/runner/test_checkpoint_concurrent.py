"""Concurrent-writer and crash-window safety of the checkpoint store.

The fleet points several spawn workers at one ``CheckpointStore``, so
the manifest must survive (a) true multiprocess write races and (b) a
writer SIGKILLed anywhere in its save sequence — including while holding
the manifest lock.  These tests drive both directly, without the fleet.
"""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.errors import CheckpointError
from repro.runner.checkpoint import _ManifestLock, CheckpointStore


def _writer(root, worker, per_worker):
    store = CheckpointStore(root)
    for i in range(per_worker):
        store.save("unit", f"w{worker}-item{i}", {"worker": worker, "i": i})


def _crashing_writer(root, barrier):
    """Saves one entry, then SIGKILLs itself while holding the lock."""
    store = CheckpointStore(root)
    store.save("unit", "survivor", "saved before the crash")
    lock_path = os.path.join(root, "MANIFEST.lock")
    # grab the manifest lock the way a save would, then die holding it
    fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    os.write(fd, str(os.getpid()).encode())
    os.close(fd)
    barrier.set()
    os.kill(os.getpid(), signal.SIGKILL)


class TestConcurrentWriters:
    def test_parallel_processes_lose_no_entries(self, tmp_path):
        root = str(tmp_path / "store")
        CheckpointStore(root)  # create the manifest up front
        ctx = multiprocessing.get_context("spawn")
        workers, per_worker = 4, 6
        procs = [
            ctx.Process(target=_writer, args=(root, w, per_worker))
            for w in range(workers)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        store = CheckpointStore(root)
        names = store.names("unit")
        assert len(names) == workers * per_worker
        for w in range(workers):
            for i in range(per_worker):
                assert store.load("unit", f"w{w}-item{i}") == {
                    "worker": w, "i": i,
                }

    def test_same_key_race_keeps_manifest_consistent(self, tmp_path):
        root = str(tmp_path / "store")
        CheckpointStore(root)
        ctx = multiprocessing.get_context("spawn")
        procs = [
            ctx.Process(target=_same_key_writer, args=(root, w))
            for w in range(3)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        store = CheckpointStore(root)
        value = store.load("unit", "contended")
        assert value in {f"writer-{w}" for w in range(3)}
        # the manifest entry's digest matches the file it points at
        with open(os.path.join(root, "MANIFEST.json"), encoding="utf-8") as fh:
            manifest = json.load(fh)
        entry = manifest["entries"]["unit/contended"]
        assert os.path.exists(os.path.join(root, entry["file"]))


def _same_key_writer(root, worker):
    CheckpointStore(root).save("unit", "contended", f"writer-{worker}")


class TestCrashWindow:
    def test_sigkill_holding_lock_does_not_wedge_the_store(self, tmp_path):
        root = str(tmp_path / "store")
        CheckpointStore(root)
        ctx = multiprocessing.get_context("spawn")
        barrier = ctx.Event()
        proc = ctx.Process(target=_crashing_writer, args=(root, barrier))
        proc.start()
        assert barrier.wait(timeout=60)
        proc.join(timeout=60)
        assert proc.exitcode == -signal.SIGKILL

        lock_path = os.path.join(root, "MANIFEST.lock")
        assert os.path.exists(lock_path), "crash should leave the lock behind"
        # age the orphaned lock past the stale threshold instead of waiting
        old = time.time() - 60
        os.utime(lock_path, (old, old))

        store = CheckpointStore(root)
        assert store.load("unit", "survivor") == "saved before the crash"
        store.save("unit", "after-crash", 42)  # breaks the stale lock
        assert not os.path.exists(lock_path)
        assert store.load("unit", "after-crash") == 42

    def test_fresh_lock_is_waited_for_not_broken(self, tmp_path):
        path = str(tmp_path / "lock")
        with _ManifestLock(path):
            contender = _ManifestLock(
                path, timeout_seconds=0.3, stale_seconds=10.0,
            )
            with pytest.raises(CheckpointError):
                contender.__enter__()
            assert os.path.exists(path)  # a live holder's lock survives

    def test_stale_lock_is_broken(self, tmp_path):
        path = str(tmp_path / "lock")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("99999")
        old = time.time() - 60
        os.utime(path, (old, old))
        with _ManifestLock(path, timeout_seconds=2.0, stale_seconds=10.0):
            pass  # acquired by breaking the stale file
        assert not os.path.exists(path)

    def test_orphaned_payload_never_enters_manifest(self, tmp_path):
        # simulate a writer killed after _atomic_write but before the
        # manifest update: the file exists, the manifest ignores it
        root = str(tmp_path / "store")
        store = CheckpointStore(root)
        store.save("unit", "real", 1)
        orphan = os.path.join(root, "unit-orphan-deadbeef.pkl")
        with open(orphan, "wb") as fh:
            fh.write(b"garbage")
        fresh = CheckpointStore(root)
        assert fresh.names("unit") == ["real"]
        assert not fresh.has("unit", "orphan")
