"""benchmarks/compare.py: the standard speedup/regression proof tool."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_compare",
    Path(__file__).resolve().parent.parent / "benchmarks" / "compare.py",
)
compare = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare)


def _payload(figures, scale=0.05):
    return {
        "schema": 1,
        "bench_scale": scale,
        "bench_seconds": 10.0,
        "figures_wall_seconds": figures,
    }


def _write(path, figures, scale=0.05):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(_payload(figures, scale)))
    return str(path)


FIG = "benchmarks/test_fig07_robustness.py::test_fig07"


class TestCompare:
    def test_identical_sides_pass(self, tmp_path, capsys):
        base = _write(tmp_path / "a" / "BENCH_t.json", {FIG: 2.0})
        new = _write(tmp_path / "b" / "BENCH_t.json", {FIG: 2.0})
        assert compare.main([base, new]) == 0
        assert "total" in capsys.readouterr().out

    def test_speedup_is_reported_not_failed(self, tmp_path, capsys):
        base = _write(tmp_path / "a" / "BENCH_t.json", {FIG: 4.0})
        new = _write(tmp_path / "b" / "BENCH_t.json", {FIG: 2.0})
        assert compare.main([base, new, "--fail-above", "10"]) == 0
        assert "-50.0" in capsys.readouterr().out

    def test_regression_beyond_threshold_fails(self, tmp_path, capsys):
        base = _write(tmp_path / "a" / "BENCH_t.json", {FIG: 2.0})
        new = _write(tmp_path / "b" / "BENCH_t.json", {FIG: 2.4})
        assert compare.main([base, new, "--fail-above", "10"]) == 1
        assert "regression" in capsys.readouterr().err

    def test_noise_floor_exempts_tiny_figures(self, tmp_path, capsys):
        tiny = "benchmarks/test_fig03_packet_sizes.py::test_fig03"
        base = _write(
            tmp_path / "a" / "BENCH_t.json", {FIG: 2.0, tiny: 0.01}
        )
        new = _write(
            tmp_path / "b" / "BENCH_t.json", {FIG: 2.0, tiny: 0.04}
        )
        # +300% on a 10ms figure is timer noise, not a regression
        assert compare.main([base, new, "--fail-above", "10"]) == 0

    def test_missing_input_is_usage_error(self, tmp_path, capsys):
        base = _write(tmp_path / "a" / "BENCH_t.json", {FIG: 2.0})
        assert compare.main([base, str(tmp_path / "missing.json")]) == 2
        assert "error" in capsys.readouterr().err.lower()

    def test_directory_sides_match_by_filename(self, tmp_path, capsys):
        _write(tmp_path / "a" / "BENCH_telemetry.json", {FIG: 2.0})
        _write(tmp_path / "b" / "BENCH_telemetry.json", {FIG: 1.0})
        assert compare.main([str(tmp_path / "a"), str(tmp_path / "b")]) == 0

    def test_knob_mismatch_warns(self, tmp_path, capsys):
        base = _write(tmp_path / "a" / "BENCH_t.json", {FIG: 2.0}, scale=0.05)
        new = _write(tmp_path / "b" / "BENCH_t.json", {FIG: 2.0}, scale=0.10)
        assert compare.main([base, new]) == 0
        captured = capsys.readouterr()
        assert "WARNING" in captured.out + captured.err

    def test_payload_diff_lists_one_sided_figures(self):
        lines, regressions = compare.compare_payloads(
            _payload({FIG: 2.0, "only::base": 1.0}),
            _payload({FIG: 2.0, "only::new": 1.0}),
            fail_above=None,
            min_seconds=0.5,
        )
        joined = "\n".join(lines)
        assert "only in base" in joined
        assert "only in new" in joined
        assert regressions == []


def test_compare_is_stdlib_only():
    source = (
        Path(__file__).resolve().parent.parent / "benchmarks" / "compare.py"
    ).read_text(encoding="utf-8")
    for banned in ("numpy", "pandas", "repro."):
        assert banned not in source
