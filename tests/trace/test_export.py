"""Exporters: Chrome trace-event JSON structure and the ASCII report."""

import json

from repro.trace import chrome_trace, merge_trace, render_report
from repro.trace.export import (
    MAX_LANE_ROWS,
    ascii_timeline,
    write_chrome_trace,
)

from .helpers import begin, end, instant, write_spans


def _small_trace(tmp_path):
    write_spans(
        tmp_path,
        "main",
        [
            begin("main", 1, 0.0, "job", cat="job"),
            begin("main", 2, 0.5, "unit:fig07", cat="unit",
                  parent="main:1"),
            instant("main", 3, 0.6, "unit.resumed", parent="main:2"),
            end("main", 2, 2.0, status="done"),
            end("main", 1, 2.5),
        ],
    )
    write_spans(
        tmp_path,
        "w0",
        [
            begin("w0", 1, 0.7, "ticks", parent="main:2"),
            end("w0", 1, 1.9),
        ],
    )
    return merge_trace(str(tmp_path))


class TestChromeTrace:
    def test_event_structure_is_perfetto_compatible(self, tmp_path):
        payload = chrome_trace(_small_trace(tmp_path))
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["trace_id"] == "t1"
        events = payload["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "i"}
        # thread metadata names every proc, supervisor first (tid 0)
        names = {
            e["tid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {0: "main", 1: "w0"}
        # durations are microseconds
        job = next(e for e in events if e.get("name") == "job")
        assert job["ts"] == 0.0
        assert job["dur"] == 2.5e6
        assert job["args"]["span_id"] == "main:1"
        unit = next(e for e in events if e.get("name") == "unit:fig07")
        assert unit["args"]["parent"] == "main:1"
        mark = next(e for e in events if e["ph"] == "i")
        assert mark["s"] == "t"

    def test_written_file_round_trips(self, tmp_path):
        trace = _small_trace(tmp_path / "spans")
        out = write_chrome_trace(trace, str(tmp_path / "out" / "trace.json"))
        assert out.exists()
        text = out.read_text(encoding="utf-8")
        assert text.endswith("\n")
        assert json.loads(text) == chrome_trace(trace)


class TestAsciiTimeline:
    def test_lane_rows_and_flags(self, tmp_path):
        trace = _small_trace(tmp_path)
        text = ascii_timeline(trace)
        assert "[main]" in text and "[w0]" in text
        assert "job (2.500s)" in text

    def test_truncated_span_is_flagged(self, tmp_path):
        write_spans(
            tmp_path, "w0", [begin("w0", 1, 0.0, "task:u", cat="task")]
        )
        text = ascii_timeline(merge_trace(str(tmp_path)))
        assert "!truncated" in text

    def test_crowded_lane_is_capped(self, tmp_path):
        records = []
        for index in range(MAX_LANE_ROWS + 30):
            records.append(begin("w0", index + 1, index * 0.01, "b"))
            records.append(end("w0", index + 1, index * 0.01 + 0.005))
        write_spans(tmp_path, "w0", records)
        text = ascii_timeline(merge_trace(str(tmp_path)))
        rows = [line for line in text.splitlines() if "b (" in line]
        assert len(rows) == MAX_LANE_ROWS
        assert "30 shorter span(s) hidden" in text

    def test_empty_trace_renders(self):
        from repro.trace.merge import MergedTrace

        assert ascii_timeline(MergedTrace(trace_id="t")) == "(empty trace)\n"


class TestRenderReport:
    def test_sections_present(self, tmp_path):
        trace = _small_trace(tmp_path)
        report = render_report(trace)
        assert "phase attribution" in report
        assert "rollups" in report
        assert "critical path" in report
        assert "timeline" in report
        # the path walks job -> unit -> worker ticks
        assert "job [main]" in report
        assert "ticks [w0]" in report

    def test_salvage_accounting_surfaces(self, tmp_path):
        write_spans(
            tmp_path, "w0",
            [begin("w0", 1, 0.0, "task:u", cat="task")],
            torn_tail='{"ph":"E"',
        )
        report = render_report(merge_trace(str(tmp_path)))
        assert "1 torn line(s)" in report
        assert "1 truncated span(s)" in report
