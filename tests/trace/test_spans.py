"""Tracer emission: record format, handles, context, pickling to empty."""

import json
import pickle

import pytest

from repro.errors import ConfigError
from repro.trace import (
    NULL_TRACER,
    NullTracer,
    TraceContext,
    Tracer,
    current_tracer,
    phase_delta,
    use_tracer,
)


def read_records(path):
    return [
        json.loads(line)
        for line in path.read_text(encoding="utf-8").splitlines()
    ]


class TestRecordFormat:
    def test_meta_line_first_then_begin_end(self, tmp_path):
        tracer = Tracer(str(tmp_path), proc="main", epoch=100.0)
        with tracer.span("job", cat="job", units=2):
            pass
        tracer.close()
        records = read_records(tmp_path / "spans-main.jsonl")
        assert [r["ph"] for r in records] == ["M", "B", "E"]
        assert records[0]["proc"] == "main"
        assert records[0]["epoch"] == 100.0
        assert records[1]["span"] == "main:1"
        assert records[1]["args"] == {"units": 2}
        assert records[2]["span"] == "main:1"

    def test_every_record_is_flushed_as_written(self, tmp_path):
        tracer = Tracer(str(tmp_path), proc="main")
        span = tracer.span("unit")
        # no close, no end: the begin record must already be durable
        records = read_records(tmp_path / "spans-main.jsonl")
        assert [r["ph"] for r in records] == ["M", "B"]
        span.end()
        tracer.close()

    def test_lines_are_canonical_json(self, tmp_path):
        tracer = Tracer(str(tmp_path), proc="main")
        tracer.span("unit", zebra=1, alpha=2).end()
        tracer.close()
        for line in (tmp_path / "spans-main.jsonl").read_text().splitlines():
            assert line == json.dumps(
                json.loads(line), sort_keys=True, separators=(",", ":")
            )

    def test_proc_label_must_be_plain(self, tmp_path):
        with pytest.raises(ConfigError):
            Tracer(str(tmp_path), proc="w/0")
        with pytest.raises(ConfigError):
            Tracer(str(tmp_path), proc="w:0")


class TestSpanHandle:
    def test_end_is_idempotent(self, tmp_path):
        tracer = Tracer(str(tmp_path), proc="main")
        span = tracer.span("unit")
        span.end(status="done")
        span.end(status="again")
        tracer.close()
        ends = [
            r for r in read_records(tmp_path / "spans-main.jsonl")
            if r["ph"] == "E"
        ]
        assert len(ends) == 1
        assert ends[0]["args"] == {"status": "done"}

    def test_exception_recorded_on_with_exit(self, tmp_path):
        tracer = Tracer(str(tmp_path), proc="main")
        with pytest.raises(ValueError):
            with tracer.span("unit"):
                raise ValueError("boom")
        tracer.close()
        ends = [
            r for r in read_records(tmp_path / "spans-main.jsonl")
            if r["ph"] == "E"
        ]
        assert ends[0]["args"] == {"error": "ValueError"}

    def test_event_parents_under_span(self, tmp_path):
        tracer = Tracer(str(tmp_path), proc="main")
        with tracer.span("unit") as span:
            span.event("unit.resumed")
        tracer.close()
        instants = [
            r for r in read_records(tmp_path / "spans-main.jsonl")
            if r["ph"] == "i"
        ]
        assert instants[0]["parent"] == span.span_id


class TestNullTracer:
    def test_null_is_inert_everywhere(self, tmp_path):
        null = NullTracer()
        assert not null.enabled
        with null.span("unit") as span:
            span.event("x")
        span.end()
        null.event("y")
        null.emit_complete("z", 0.0, 1.0)
        null.emit_phases(span, {"queueing": 1.0})
        assert null.context() is None
        null.close()
        assert list(tmp_path.iterdir()) == []


class TestCurrentTracer:
    def test_use_installs_and_restores(self, tmp_path):
        assert current_tracer() is NULL_TRACER
        tracer = Tracer(str(tmp_path), proc="main")
        with use_tracer(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER
        tracer.close()

    def test_restores_on_exception(self, tmp_path):
        tracer = Tracer(str(tmp_path), proc="main")
        with pytest.raises(RuntimeError):
            with use_tracer(tracer):
                raise RuntimeError
        assert current_tracer() is NULL_TRACER
        tracer.close()


class TestContextPropagation:
    def test_child_joins_trace_with_shared_epoch(self, tmp_path):
        parent = Tracer(str(tmp_path), proc="main", epoch=500.0)
        with parent.span("task") as span:
            ctx = parent.context(parent=span)
        assert ctx == TraceContext(
            trace_id=parent.trace_id,
            trace_dir=str(tmp_path),
            epoch=500.0,
            parent_span_id=span.span_id,
        )
        child = Tracer.from_context(ctx, proc="w0")
        assert child.epoch == 500.0
        assert child.trace_id == parent.trace_id
        child.span("task:unit", parent=ctx.parent_span_id).end()
        parent.close()
        child.close()
        child_records = read_records(tmp_path / "spans-w0.jsonl")
        begins = [r for r in child_records if r["ph"] == "B"]
        assert begins[0]["parent"] == span.span_id

    def test_with_parent_rewrites_only_the_parent(self):
        ctx = TraceContext("t", "d", 1.0, parent_span_id=None)
        rewired = ctx.with_parent("main:7")
        assert rewired.parent_span_id == "main:7"
        assert (rewired.trace_id, rewired.trace_dir, rewired.epoch) == (
            "t", "d", 1.0,
        )


class TestPicklePurity:
    def test_tracer_pickles_to_disabled_empty_shell(self, tmp_path):
        tracer = Tracer(str(tmp_path), proc="main")
        tracer.span("unit").end()
        clone = pickle.loads(pickle.dumps(tracer))
        assert not clone.enabled
        assert clone.proc == "off"
        assert not hasattr(clone, "trace_dir")
        # a revived tracer must stay inert
        clone.span("x").end()
        clone.event("y")
        tracer.close()
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == ["spans-main.jsonl"]


class TestPhases:
    def test_phase_delta_keeps_positive_deltas_only(self):
        before = {"queueing": 1.0, "policy": 2.0, "gone": 5.0}
        after = {"queueing": 1.5, "policy": 2.0, "tcp": 0.25, "gone": 4.0}
        assert phase_delta(before, after) == {
            "queueing": 0.5, "tcp": 0.25,
        }

    def test_emit_phases_lays_spans_back_to_back_ascending(self, tmp_path):
        tracer = Tracer(str(tmp_path), proc="main", epoch=100.0)
        parent = tracer.span("unit")
        tracer.emit_phases(
            parent, {"queueing": 0.4, "tcp": 0.1, "idle": 0.0}
        )
        parent.end()
        tracer.close()
        xs = [
            r for r in read_records(tmp_path / "spans-main.jsonl")
            if r["ph"] == "X"
        ]
        # idle (zero) skipped; shortest first so the largest phase is the
        # last finisher the critical-path walk descends into
        assert [r["name"] for r in xs] == ["tcp", "queueing"]
        assert xs[0]["ts"] == parent.start_ts
        assert xs[0]["dur"] == 0.1
        assert xs[1]["ts"] == round(parent.start_ts + 0.1, 6)
        assert xs[1]["dur"] == 0.4
        assert all(r["parent"] == parent.span_id for r in xs)
        assert all(r["args"]["synthetic"] for r in xs)
