"""Live spans from the instrumented fabric + digest identity with tracing.

These tests run the real supervisor / fleet / chaos layers with a real
tracer attached and assert (a) the span DAG they emit is the documented
taxonomy and joins across processes, and (b) results and digests are
byte-identical with tracing on or off — the regression lock for the
observation-only contract.
"""

import pickle

from repro.chaos import ChaosOptions, run_chaos
from repro.experiments.common import FunctionalSettings
from repro.fleet import FleetOptions, figure_tasks, run_fleet
import numpy as np

from repro.inet.shard import BarrierExchange, ShardSpec
from repro.runner import CheckpointStore, SupervisedRunner
from repro.trace import NullTracer, Tracer, merge_trace, use_tracer


def _settings():
    return FunctionalSettings(
        scale=0.05, warmup_seconds=0.5, measure_seconds=1.0, seed=3
    )


def _quick_unit(ctx):
    return {"name": ctx.name}


class TestRunnerSpans:
    def test_job_and_unit_spans_with_parenting(self, tmp_path):
        tracer = Tracer(str(tmp_path), proc="main")
        with use_tracer(tracer):
            report = SupervisedRunner().run_units(
                [("u1", _quick_unit), ("u2", _quick_unit)]
            )
        tracer.close()
        assert report.status == "ok"
        merged = merge_trace(str(tmp_path))
        by_name = {s.name: s for s in merged.spans}
        job = by_name["job"]
        assert job.cat == "job"
        assert job.args["status"] == "ok"
        for unit in ("unit:u1", "unit:u2"):
            assert by_name[unit].parent == job.span_id
            assert by_name[unit].args["status"] == "done"
        assert merged.truncated_spans == 0

    def test_no_tracer_no_files(self, tmp_path):
        report = SupervisedRunner().run_units([("u1", _quick_unit)])
        assert report.status == "ok"
        assert list(tmp_path.iterdir()) == []


class TestFleetSpans:
    def test_worker_spans_join_the_supervisor_dag(self, tmp_path):
        # fig07 (not fig03) so the tasks drive the profiled tick engine
        # and the workers synthesize per-phase spans from its totals
        trace_dir = tmp_path / "trace"
        tasks = figure_tasks("fig07", _settings())
        store = CheckpointStore(str(tmp_path / "store"))
        tracer = Tracer(str(trace_dir), proc="main")
        with use_tracer(tracer):
            freport = run_fleet(
                tasks, store, FleetOptions(workers=2)
            )
        tracer.close()
        assert freport.status == "ok"

        merged = merge_trace(str(trace_dir))
        assert "main" in merged.procs
        worker_procs = sorted(p for p in merged.procs if p != "main")
        assert worker_procs  # at least one worker wrote spans
        by_id = merged.by_id()
        fleet = next(s for s in merged.spans if s.name == "fleet")
        # every worker-side task span parents under a supervisor-side
        # task span of the same name, which parents under the fleet span
        worker_tasks = [
            s for s in merged.spans
            if s.cat == "task" and s.proc != "main"
        ]
        assert len(worker_tasks) == len(tasks)
        for span in worker_tasks:
            parent = by_id[span.parent]
            assert parent.proc == "main"
            assert parent.name == span.name
            assert parent.parent == fleet.span_id
        # per-tick engine phases were synthesized inside the worker spans
        assert any(s.cat == "phase" for s in merged.spans)

    def test_fleet_results_identical_with_tracing(self, tmp_path):
        tasks = figure_tasks("fig03", _settings())
        base = run_fleet(
            tasks,
            CheckpointStore(str(tmp_path / "s1")),
            FleetOptions(workers=2),
        )
        tracer = Tracer(str(tmp_path / "trace"), proc="main")
        with use_tracer(tracer):
            traced = run_fleet(
                figure_tasks("fig03", _settings()),
                CheckpointStore(str(tmp_path / "s2")),
                FleetOptions(workers=2),
            )
        tracer.close()
        assert base.results == traced.results


class TestChaosDigestIdentity:
    def test_campaign_digest_identical_with_tracing(self, tmp_path):
        options = ChaosOptions(
            seed=4, campaigns=1, simulator="packet", shrink=False,
            artifact_dir=None,
        )
        base = run_chaos(options)
        tracer = Tracer(str(tmp_path), proc="main")
        with use_tracer(tracer):
            traced = run_chaos(options)
        tracer.close()
        assert base.campaigns[0]["digest"] == traced.campaigns[0]["digest"]
        assert base.campaigns[0]["verdicts"] == (
            traced.campaigns[0]["verdicts"]
        )
        # the sweep actually emitted campaign spans
        merged = merge_trace(str(tmp_path))
        assert any(s.name == "campaign.run" for s in merged.spans)


class TestCheckpointPurity:
    def test_barrier_exchange_pickles_without_its_tracer(self, tmp_path):
        tracer = Tracer(str(tmp_path / "trace"), proc="main")
        with use_tracer(tracer):
            exchange = BarrierExchange(
                str(tmp_path / "xc"),
                ShardSpec(
                    shard=0,
                    n_shards=2,
                    shard_of_as=np.zeros(4, dtype=np.int64),
                ),
            )
            assert exchange.tracer is tracer
        clone = pickle.loads(pickle.dumps(exchange))
        # the live tracer is replaced by a disabled shell on the way out
        assert type(clone.tracer) is NullTracer
        assert not clone.tracer.enabled
        tracer.close()

    def test_tracer_state_never_reaches_pickles(self, tmp_path):
        tracer = Tracer(str(tmp_path), proc="main")
        tracer.span("unit").end()
        payload = pickle.dumps(tracer)
        clone = pickle.loads(payload)
        assert not clone.enabled
        # pickling twice is stable: no hidden wall-clock state leaks in
        assert pickle.dumps(clone) == pickle.dumps(
            pickle.loads(payload)
        )
        tracer.close()
