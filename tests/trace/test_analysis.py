"""Critical path, self/total rollups, phase and straggler attribution."""

from repro.trace import analyze, critical_path, merge_trace
from repro.trace.analysis import attribute_phase, self_times
from repro.trace.merge import Span

from .helpers import begin, end, write_spans


def _gang_trace(tmp_path):
    """A two-worker gang: w1 straggles, w0 waits at the barrier for it."""
    write_spans(
        tmp_path,
        "main",
        [
            begin("main", 1, 0.0, "fleet", cat="job"),
            begin("main", 2, 0.1, "task:u#s0", cat="task", parent="main:1"),
            begin("main", 3, 0.1, "task:u#s1", cat="task", parent="main:1"),
            end("main", 2, 9.0),
            end("main", 3, 9.5),
            end("main", 1, 10.0),
        ],
    )
    write_spans(
        tmp_path,
        "w0",
        [
            begin("w0", 1, 0.2, "task:u#s0", cat="task", parent="main:2"),
            # w0 reaches the barrier early and waits 3s for w1
            begin("w0", 2, 1.0, "barrier.collect", parent="w0:1",
                  cat="barrier"),
            end("w0", 2, 4.0),
            begin("w0", 3, 5.0, "checkpoint.save", parent="w0:1",
                  cat="checkpoint"),
            end("w0", 3, 5.5),
            end("w0", 1, 8.8),
        ],
    )
    write_spans(
        tmp_path,
        "w1",
        [
            begin("w1", 1, 0.2, "task:u#s1", cat="task", parent="main:3"),
            begin("w1", 2, 3.5, "barrier.collect", parent="w1:1",
                  cat="barrier"),
            end("w1", 2, 4.0),
            begin("w1", 3, 4.5, "salvage.load", parent="w1:1",
                  cat="salvage"),
            end("w1", 3, 5.0),
            end("w1", 1, 9.4),
        ],
    )
    return merge_trace(str(tmp_path))


class TestCriticalPath:
    def test_last_finisher_walk_crosses_processes(self, tmp_path):
        trace = _gang_trace(tmp_path)
        path = [s.span_id for s in critical_path(trace)]
        # fleet -> the later-ending supervisor task span -> the worker
        # span it parents -> that worker's last-ending child
        assert path == ["main:1", "main:3", "w1:1", "w1:3"]

    def test_empty_trace_has_empty_path(self):
        from repro.trace.merge import MergedTrace

        assert critical_path(MergedTrace(trace_id="t")) == []


class TestSelfTimes:
    def test_child_union_is_subtracted_once(self, tmp_path):
        # two overlapping children must not be double-subtracted
        write_spans(
            tmp_path,
            "main",
            [
                begin("main", 1, 0.0, "unit"),
                begin("main", 2, 1.0, "a", parent="main:1"),
                begin("main", 3, 2.0, "b", parent="main:1"),
                end("main", 2, 3.0),
                end("main", 3, 4.0),
                end("main", 1, 10.0),
            ],
        )
        selfs = self_times(merge_trace(str(tmp_path)))
        # children cover [1, 4) as a union -> 10 - 3 = 7
        assert abs(selfs["main:1"] - 7.0) < 1e-9

    def test_overshooting_child_is_clipped(self, tmp_path):
        # a truncated child can end after its parent; never negative self
        write_spans(
            tmp_path,
            "main",
            [
                begin("main", 1, 0.0, "unit"),
                begin("main", 2, 0.0, "child", parent="main:1"),
                end("main", 2, 5.0),
                end("main", 1, 2.0),
            ],
        )
        selfs = self_times(merge_trace(str(tmp_path)))
        assert selfs["main:1"] == 0.0


class TestPhaseAttribution:
    def test_cat_mapping(self):
        def span(cat, name):
            return Span(
                span_id="x:1", parent=None, name=name, cat=cat,
                proc="x", start=0.0, end=1.0,
            )

        assert attribute_phase(span("barrier", "barrier.collect")) == (
            "barrier-wait"
        )
        assert attribute_phase(span("checkpoint", "checkpoint.save")) == (
            "checkpoint"
        )
        assert attribute_phase(span("salvage", "salvage.load")) == "salvage"
        assert attribute_phase(span("retry", "retry.wait")) == "retry-wait"
        # synthetic profiler phases attribute under their subsystem name
        assert attribute_phase(span("phase", "queueing")) == "queueing"
        # everything else buckets under its category
        assert attribute_phase(span("task", "task:u")) == "task"

    def test_analysis_charges_self_time_to_named_phases(self, tmp_path):
        analysis = analyze(_gang_trace(tmp_path))
        assert abs(analysis.phases["barrier-wait"] - 3.5) < 1e-9
        assert abs(analysis.phases["checkpoint"] - 0.5) < 1e-9
        assert abs(analysis.phases["salvage"] - 0.5) < 1e-9
        assert analysis.wall_seconds == 10.0

    def test_rollups_sorted_by_total_with_counts(self, tmp_path):
        analysis = analyze(_gang_trace(tmp_path))
        barrier = next(
            r for r in analysis.rollups
            if (r.cat, r.name) == ("barrier", "barrier.collect")
        )
        assert barrier.count == 2
        assert abs(barrier.total_seconds - 3.5) < 1e-9
        totals = [r.total_seconds for r in analysis.rollups]
        assert totals == sorted(totals, reverse=True)


class TestStraggler:
    def test_least_barrier_wait_is_the_straggler(self, tmp_path):
        analysis = analyze(_gang_trace(tmp_path))
        # w0 waited 3s at collect, w1 only 0.5s: w1 kept everyone waiting
        assert analysis.barrier_wait_by_proc == {"w0": 3.0, "w1": 0.5}
        assert analysis.straggler == "w1"

    def test_single_proc_has_no_straggler(self, tmp_path):
        write_spans(
            tmp_path,
            "w0",
            [
                begin("w0", 1, 0.0, "barrier.collect", cat="barrier"),
                end("w0", 1, 1.0),
            ],
        )
        analysis = analyze(merge_trace(str(tmp_path)))
        assert analysis.straggler is None
