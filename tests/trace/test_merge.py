"""Deterministic merge: canonical order, torn-line and SIGKILL salvage."""

import pytest

from repro.errors import ConfigError
from repro.trace import merge_trace
from repro.trace.export import chrome_trace

from .helpers import begin, end, instant, write_spans


def _interleaved_records():
    """Two workers whose spans overlap in time."""
    w0 = [
        begin("w0", 1, 0.10, "task:a", parent="main:2", cat="task"),
        begin("w0", 2, 0.20, "ticks", parent="w0:1"),
        end("w0", 2, 0.90),
        end("w0", 1, 1.00, status="done"),
    ]
    w1 = [
        begin("w1", 1, 0.10, "task:b", parent="main:3", cat="task"),
        instant("w1", 2, 0.50, "task.salvaged", parent="w1:1"),
        end("w1", 1, 0.80, status="done"),
    ]
    main = [
        begin("main", 1, 0.00, "fleet", cat="job"),
        begin("main", 2, 0.05, "task:a", cat="task", parent="main:1"),
        begin("main", 3, 0.05, "task:b", cat="task", parent="main:1"),
        end("main", 3, 0.85),
        end("main", 2, 1.05),
        end("main", 1, 1.10),
    ]
    return main, w0, w1


class TestCanonicalOrder:
    def test_merge_is_pure_in_file_contents(self, tmp_path):
        main, w0, w1 = _interleaved_records()
        first = tmp_path / "a"
        write_spans(first, "main", main)
        write_spans(first, "w0", w0)
        write_spans(first, "w1", w1)
        # same contents, opposite arrival order
        second = tmp_path / "b"
        write_spans(second, "w1", w1)
        write_spans(second, "w0", w0)
        write_spans(second, "main", main)

        merged_a = merge_trace(str(first))
        merged_b = merge_trace(str(second))
        assert [s.span_id for s in merged_a.spans] == [
            s.span_id for s in merged_b.spans
        ]
        assert merged_a == merged_b
        assert chrome_trace(merged_a) == chrome_trace(merged_b)

    def test_order_is_start_then_proc_then_seq(self, tmp_path):
        main, w0, w1 = _interleaved_records()
        write_spans(tmp_path, "main", main)
        write_spans(tmp_path, "w0", w0)
        write_spans(tmp_path, "w1", w1)
        merged = merge_trace(str(tmp_path))
        assert [s.span_id for s in merged.spans] == [
            "main:1",            # start 0.00
            "main:2", "main:3",  # start 0.05, same proc: seq order
            "w0:1", "w1:1",      # start 0.10, proc order
            "w0:2",              # start 0.20
        ]
        assert merged.trace_id == "t1"
        assert merged.procs == {"main": 1000.0, "w0": 1000.0, "w1": 1000.0}

    def test_parent_links_cross_processes(self, tmp_path):
        main, w0, w1 = _interleaved_records()
        write_spans(tmp_path, "main", main)
        write_spans(tmp_path, "w0", w0)
        write_spans(tmp_path, "w1", w1)
        merged = merge_trace(str(tmp_path))
        children = merged.children()
        assert [s.span_id for s in children["main:2"]] == ["w0:1"]
        assert [s.span_id for s in children["main:3"]] == ["w1:1"]
        assert [s.span_id for s in merged.roots()] == ["main:1"]
        assert merged.events[0].name == "task.salvaged"

    def test_begin_and_end_args_are_folded(self, tmp_path):
        write_spans(
            tmp_path,
            "main",
            [
                begin("main", 1, 0.0, "unit", attempt=1),
                end("main", 1, 1.0, status="done"),
            ],
        )
        span = merge_trace(str(tmp_path)).spans[0]
        assert span.args == {"attempt": 1, "status": "done"}
        assert span.duration == 1.0


class TestSigkillSalvage:
    def test_torn_trailing_line_is_counted_not_fatal(self, tmp_path):
        main, w0, w1 = _interleaved_records()
        write_spans(tmp_path, "main", main)
        write_spans(
            tmp_path, "w0", w0,
            torn_tail='{"ph":"E","ts":1.01,"span":"w0',
        )
        write_spans(tmp_path, "w1", w1)
        merged = merge_trace(str(tmp_path))
        assert merged.torn_lines == 1
        assert len(merged.spans) == 6  # every complete span survived

    def test_killed_worker_spans_truncate_at_last_sign_of_life(
        self, tmp_path
    ):
        # w0 was SIGKILLed mid-task: no end records ever made it out
        write_spans(tmp_path, "main", _interleaved_records()[0])
        write_spans(
            tmp_path,
            "w0",
            [
                begin("w0", 1, 0.10, "task:a", parent="main:2", cat="task"),
                begin("w0", 2, 0.20, "ticks", parent="w0:1"),
                instant("w0", 3, 0.60, "heartbeat"),
            ],
            torn_tail='{"ph":"E","ts":0.61,"sp',
        )
        merged = merge_trace(str(tmp_path))
        assert merged.truncated_spans == 2
        assert merged.torn_lines == 1
        by_id = merged.by_id()
        for span_id in ("w0:1", "w0:2"):
            assert by_id[span_id].truncated
            # closed at the worker's last parseable timestamp, so the
            # timeline never extends past provable liveness
            assert by_id[span_id].end == 0.60
        # the rest of the timeline is intact and still canonically ordered
        assert [s.span_id for s in merged.spans] == sorted(
            (s.span_id for s in merged.spans),
            key=lambda sid: (by_id[sid].start, by_id[sid].proc,
                             by_id[sid].seq),
        )

    def test_orphan_end_is_dropped_and_counted(self, tmp_path):
        write_spans(
            tmp_path,
            "w0",
            [
                end("w0", 9, 0.5),
                begin("w0", 10, 0.6, "ok"),
                end("w0", 10, 0.7),
            ],
        )
        merged = merge_trace(str(tmp_path))
        assert merged.orphan_ends == 1
        assert [s.span_id for s in merged.spans] == ["w0:10"]


class TestNoData:
    def test_missing_directory_raises_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="not found"):
            merge_trace(str(tmp_path / "nope"))

    def test_empty_directory_raises_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="no span files"):
            merge_trace(str(tmp_path))
