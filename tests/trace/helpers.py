"""Hand-written span files: the JSONL format as a regression surface.

Tests build trace directories from explicit records instead of live
tracers wherever timing must be exact — the byte format written here is
the on-disk contract :mod:`repro.trace.merge` must keep parsing.
"""

import json


def record_line(record):
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def meta(proc, trace="t1", epoch=1000.0):
    return {"ph": "M", "proc": proc, "trace": trace, "epoch": epoch}


def begin(proc, seq, ts, name, parent=None, cat="run", **args):
    return {
        "ph": "B",
        "ts": ts,
        "span": f"{proc}:{seq}",
        "parent": parent,
        "name": name,
        "cat": cat,
        "proc": proc,
        "args": args,
    }


def end(proc, seq, ts, **args):
    return {"ph": "E", "ts": ts, "span": f"{proc}:{seq}", "args": args}


def instant(proc, seq, ts, name, parent=None, cat="run", **args):
    return {
        "ph": "i",
        "ts": ts,
        "span": f"{proc}:{seq}",
        "parent": parent,
        "name": name,
        "cat": cat,
        "proc": proc,
        "args": args,
    }


def write_spans(trace_dir, proc, records, trace="t1", epoch=1000.0,
                torn_tail=None):
    """Write one process's span file; ``torn_tail`` appends an unfinished
    line with no newline, the footprint of a SIGKILL mid-write."""
    trace_dir.mkdir(parents=True, exist_ok=True)
    lines = [record_line(meta(proc, trace=trace, epoch=epoch))]
    lines.extend(record_line(r) for r in records)
    text = "\n".join(lines) + "\n"
    if torn_tail is not None:
        text += torn_tail
    path = trace_dir / f"spans-{proc}.jsonl"
    path.write_text(text, encoding="utf-8")
    return path
