"""Property tests for the shrink-only baseline invariant.

The baseline contract (``src/repro/check/baseline.py``) is exact-count
matching: a tree must contain *exactly* as many findings with a given
``(rule, path, line_content)`` identity as the baseline grants.  The
properties below pin the two directions of that contract for arbitrary
finding multisets:

* the baseline can only **shrink** — fixing a finding surfaces its entry
  as stale, it is never silently kept; and
* it can never **grow** — any finding beyond the granted count is new,
  never silently absorbed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.baseline import Baseline
from repro.check.diagnostics import Diagnostic, Severity

RULES = ("FLC001", "FLC003", "FLC007", "FLC010")
PATHS = ("repro/core/link.py", "repro/fleet/pool.py", "repro/inet/shard.py")
LINES = ("x = time.time()", "open(path, 'w')", "buf = vec[lo:hi]")


def diagnostic(rule, path, content, line=1):
    return Diagnostic(
        rule_id=rule,
        severity=Severity.WARNING,
        path=path,
        line=line,
        col=0,
        message="synthetic finding",
        line_content=content,
    )


diagnostics = st.builds(
    diagnostic,
    rule=st.sampled_from(RULES),
    path=st.sampled_from(PATHS),
    content=st.sampled_from(LINES),
    line=st.integers(min_value=1, max_value=400),
)

finding_lists = st.lists(diagnostics, max_size=12)


@settings(max_examples=200, deadline=None)
@given(findings=finding_lists)
def test_match_partitions_findings(findings):
    baseline = Baseline.from_findings(findings[: len(findings) // 2])
    result = baseline.match(findings)
    assert len(result.new) + len(result.baselined) == len(findings)
    assert set(result.new) | set(result.baselined) >= set(findings)


@settings(max_examples=200, deadline=None)
@given(findings=finding_lists)
def test_exact_baseline_is_clean_and_not_stale(findings):
    """from_findings(X).match(X) -> nothing new, nothing stale."""
    baseline = Baseline.from_findings(findings)
    result = baseline.match(findings)
    assert result.new == []
    assert result.stale == []
    assert len(result.baselined) == len(findings)


@settings(max_examples=200, deadline=None)
@given(findings=finding_lists, data=st.data())
def test_fixed_findings_surface_as_stale(findings, data):
    """Shrink direction: removing findings makes entries stale."""
    baseline = Baseline.from_findings(findings)
    keep = data.draw(
        st.lists(
            st.sampled_from(findings) if findings else st.nothing(),
            max_size=len(findings),
            unique_by=id,
        )
        if findings
        else st.just([])
    )
    result = baseline.match(keep)
    assert result.new == []
    kept = {}
    for diag in keep:
        kept[diag.baseline_key] = kept.get(diag.baseline_key, 0) + 1
    for entry in baseline.entries:
        if kept.get(entry.key, 0) < entry.count:
            assert entry in result.stale
        else:
            assert entry not in result.stale


@settings(max_examples=200, deadline=None)
@given(findings=finding_lists, extra=finding_lists)
def test_extra_findings_are_always_new(findings, extra):
    """Grow direction: findings beyond the budget are never absorbed."""
    baseline = Baseline.from_findings(findings)
    result = baseline.match(findings + extra)
    assert len(result.new) == len(extra)
    assert len(result.baselined) == len(findings)


@settings(max_examples=200, deadline=None)
@given(findings=finding_lists)
def test_budget_never_exceeded_per_key(findings):
    baseline = Baseline.from_findings(findings)
    granted = {entry.key: entry.count for entry in baseline.entries}
    result = baseline.match(findings + findings)  # doubled tree
    used = {}
    for diag in result.baselined:
        used[diag.baseline_key] = used.get(diag.baseline_key, 0) + 1
    for key, count in used.items():
        assert count <= granted.get(key, 0)


@settings(max_examples=50, deadline=None)
@given(findings=finding_lists)
def test_save_load_round_trip_preserves_matching(findings, tmp_path_factory):
    path = tmp_path_factory.mktemp("baseline") / "baseline.json"
    baseline = Baseline.from_findings(findings)
    baseline.save(str(path))
    reloaded = Baseline.load(str(path))
    original = baseline.match(findings)
    again = reloaded.match(findings)
    assert [d.baseline_key for d in again.baselined] == [
        d.baseline_key for d in original.baselined
    ]
    assert again.new == original.new == []
