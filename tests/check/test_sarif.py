"""Structural checks on the SARIF 2.1.0 exporter.

CI additionally validates the emitted document against the published
2.1.0 JSON schema (see ``.github/workflows/ci.yml``); these tests pin
the flocheck-specific mapping decisions that the schema cannot: the
``src/`` URI prefix, 1-based columns, suppression kinds, and pseudo-rule
registration.
"""

import json

import pytest

from repro.check.diagnostics import Diagnostic, Severity
from repro.check.engine import CheckReport
from repro.check.rules import all_rules
from repro.check.sarif import report_to_sarif, write_sarif


def diag(rule="FLC003", path="repro/core/link.py", severity=Severity.WARNING):
    return Diagnostic(
        rule_id=rule,
        severity=severity,
        path=path,
        line=12,
        col=4,
        message="rate compared without units",
        hint="wrap it in units.mbps()",
        line_content="if rate > cap:",
    )


def sarif_for(report):
    return report_to_sarif(report, package_name="repro")


class TestDocumentShape:
    def test_version_and_schema(self):
        doc = sarif_for(CheckReport())
        assert doc["version"] == "2.1.0"
        assert doc["$schema"].endswith("sarif-2.1.0.json")
        assert len(doc["runs"]) == 1

    def test_driver_registers_every_rule_and_pseudo_rules(self):
        doc = sarif_for(CheckReport())
        ids = [row["id"] for row in doc["runs"][0]["tool"]["driver"]["rules"]]
        for rule in all_rules():
            assert rule.rule_id in ids
        assert "FLC000" in ids
        assert "FLC099" in ids
        assert len(ids) == len(set(ids))

    def test_rule_index_points_at_the_right_row(self):
        report = CheckReport(new_findings=[diag()])
        doc = sarif_for(report)
        run = doc["runs"][0]
        result = run["results"][0]
        row = run["tool"]["driver"]["rules"][result["ruleIndex"]]
        assert row["id"] == result["ruleId"] == "FLC003"


class TestResultMapping:
    def test_package_path_gains_src_prefix(self):
        doc = sarif_for(CheckReport(new_findings=[diag()]))
        location = doc["runs"][0]["results"][0]["locations"][0]
        artifact = location["physicalLocation"]["artifactLocation"]
        assert artifact["uri"] == "src/repro/core/link.py"
        assert artifact["uriBaseId"] == "%SRCROOT%"

    def test_root_relative_path_is_untouched(self):
        report = CheckReport(
            new_findings=[diag(path="tests/fleet/test_pool.py")]
        )
        doc = sarif_for(report)
        location = doc["runs"][0]["results"][0]["locations"][0]
        uri = location["physicalLocation"]["artifactLocation"]["uri"]
        assert uri == "tests/fleet/test_pool.py"

    def test_column_is_one_based(self):
        doc = sarif_for(CheckReport(new_findings=[diag()]))
        region = doc["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["region"]
        assert region == {"startLine": 12, "startColumn": 5}

    def test_severity_maps_to_level(self):
        report = CheckReport(
            new_findings=[diag(severity=Severity.ERROR)],
        )
        doc = sarif_for(report)
        assert doc["runs"][0]["results"][0]["level"] == "error"

    def test_hint_is_folded_into_message(self):
        doc = sarif_for(CheckReport(new_findings=[diag()]))
        text = doc["runs"][0]["results"][0]["message"]["text"]
        assert "rate compared without units" in text
        assert "units.mbps()" in text


class TestSuppressions:
    def test_new_findings_carry_no_suppression(self):
        doc = sarif_for(CheckReport(new_findings=[diag()]))
        assert "suppressions" not in doc["runs"][0]["results"][0]

    def test_baselined_findings_are_externally_suppressed(self):
        doc = sarif_for(CheckReport(baselined=[diag()]))
        suppressions = doc["runs"][0]["results"][0]["suppressions"]
        assert [s["kind"] for s in suppressions] == ["external"]

    def test_comment_suppressed_findings_are_in_source(self):
        doc = sarif_for(CheckReport(suppressed=[diag()]))
        suppressions = doc["runs"][0]["results"][0]["suppressions"]
        assert [s["kind"] for s in suppressions] == ["inSource"]

    def test_all_three_buckets_serialise_together(self):
        report = CheckReport(
            new_findings=[diag()],
            baselined=[diag(rule="FLC001")],
            suppressed=[diag(rule="FLC005")],
        )
        doc = sarif_for(report)
        assert len(doc["runs"][0]["results"]) == 3


class TestWriteSarif:
    def test_written_file_is_stable_json(self, tmp_path):
        out = tmp_path / "flocheck.sarif"
        report = CheckReport(new_findings=[diag()])
        write_sarif(report, str(out))
        write_sarif(report, str(out))  # idempotent
        loaded = json.loads(out.read_text())
        assert loaded["version"] == "2.1.0"
        assert loaded["runs"][0]["results"][0]["ruleId"] == "FLC003"


@pytest.mark.skipif(
    pytest.importorskip("jsonschema", reason="jsonschema unavailable")
    is None,
    reason="jsonschema unavailable",
)
class TestSchemaSpotChecks:
    """Offline sanity: the bits CI's full-schema validation would catch."""

    def test_every_result_has_required_members(self):
        report = CheckReport(
            new_findings=[diag()],
            baselined=[diag(rule="FLC001")],
        )
        for result in sarif_for(report)["runs"][0]["results"]:
            assert isinstance(result["message"]["text"], str)
            assert result["level"] in ("error", "warning", "note", "none")
            for location in result["locations"]:
                region = location["physicalLocation"]["region"]
                assert region["startLine"] >= 1
                assert region["startColumn"] >= 1
