"""Symbol table, call-graph resolution, and spawn reachability."""

import textwrap

from repro.check.callgraph import (
    CallGraph,
    SymbolTable,
    module_aliases,
    spawn_entrypoints,
)
from repro.check.engine import SourceModule


def module(name, source, relpath=None):
    relpath = relpath or name.replace(".", "/") + ".py"
    return SourceModule(
        path=None, relpath=relpath, module=name,
        text=textwrap.dedent(source),
    )


class TestModuleAliases:
    def test_single_dot_relative(self):
        mod = module(
            "repro.inet.jobs",
            "from .shard import BarrierExchange\n",
        )
        assert module_aliases(mod)["BarrierExchange"] == (
            "repro.inet.shard.BarrierExchange"
        )

    def test_double_dot_relative(self):
        mod = module(
            "repro.fleet.worker",
            "from ..runner.checkpoint import CheckpointStore\n",
        )
        assert module_aliases(mod)["CheckpointStore"] == (
            "repro.runner.checkpoint.CheckpointStore"
        )

    def test_package_init_anchors_at_itself(self):
        mod = module(
            "repro.fleet",
            "from .pool import run_fleet\n",
            relpath="repro/fleet/__init__.py",
        )
        assert module_aliases(mod)["run_fleet"] == (
            "repro.fleet.pool.run_fleet"
        )

    def test_absolute_imports_still_present(self):
        mod = module("repro.x", "import numpy as np\n")
        assert module_aliases(mod)["np"] == "numpy"


FLEET = {
    "repro.fleet.worker": """\
        from ..stats.registry import record


        def worker_main(config):
            record("start", config)
            _helper()


        def _helper():
            return 1
        """,
    "repro.fleet.jobs": """\
        class ShardUnitTask:
            def run(self, ctx):
                self._go(ctx)

            def _go(self, ctx):
                return ctx
        """,
    "repro.stats.registry": """\
        def record(name, value):
            return (name, value)


        def unreached():
            return None
        """,
}


def build_table():
    return SymbolTable.build(
        module(name, src) for name, src in FLEET.items()
    )


class TestSymbolTable:
    def test_indexes_functions_and_methods(self):
        table = build_table()
        assert "repro.fleet.worker.worker_main" in table.functions
        assert "repro.fleet.jobs.ShardUnitTask.run" in table.functions
        assert table.functions["repro.fleet.jobs.ShardUnitTask.run"].is_method

    def test_by_simple_name(self):
        table = build_table()
        assert table.by_name["record"] == ["repro.stats.registry.record"]


class TestCallGraph:
    def test_from_import_edge(self):
        graph = CallGraph(build_table())
        assert "repro.stats.registry.record" in graph.callees(
            "repro.fleet.worker.worker_main"
        )

    def test_module_local_edge(self):
        graph = CallGraph(build_table())
        assert "repro.fleet.worker._helper" in graph.callees(
            "repro.fleet.worker.worker_main"
        )

    def test_self_method_edge(self):
        graph = CallGraph(build_table())
        assert "repro.fleet.jobs.ShardUnitTask._go" in graph.callees(
            "repro.fleet.jobs.ShardUnitTask.run"
        )

    def test_attribute_call_over_approximates(self):
        mods = dict(FLEET)
        mods["repro.fleet.pool"] = """\
            def dispatch(task, ctx):
                task.run(ctx)
            """
        table = SymbolTable.build(
            module(name, src) for name, src in mods.items()
        )
        graph = CallGraph(table)
        # `task.run` is dynamic: edges to every known `run`
        assert "repro.fleet.jobs.ShardUnitTask.run" in graph.callees(
            "repro.fleet.pool.dispatch"
        )

    def test_reachable_and_chain(self):
        graph = CallGraph(build_table())
        roots = ["repro.fleet.worker.worker_main"]
        reached = graph.reachable(roots)
        assert "repro.stats.registry.record" in reached
        assert "repro.stats.registry.unreached" not in reached
        chain = graph.chain(roots, "repro.stats.registry.record")
        assert chain == [
            "repro.fleet.worker.worker_main",
            "repro.stats.registry.record",
        ]

    def test_chain_missing_target_is_empty(self):
        graph = CallGraph(build_table())
        assert graph.chain(
            ["repro.fleet.worker.worker_main"],
            "repro.stats.registry.unreached",
        ) == []


class TestSpawnEntrypoints:
    def test_worker_mains_and_job_runs(self):
        roots = spawn_entrypoints(build_table())
        assert roots == [
            "repro.fleet.jobs.ShardUnitTask.run",
            "repro.fleet.worker.worker_main",
        ]

    def test_helpers_are_not_roots(self):
        roots = spawn_entrypoints(build_table())
        assert "repro.fleet.worker._helper" not in roots
