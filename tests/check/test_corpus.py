"""Mutation-corpus driver: each seeded defect is caught by its rule.

Every directory under ``tests/check/corpus/`` is one case: a fragment
of a ``repro`` package tree containing exactly one seeded defect, plus
an ``EXPECT.txt`` declaring which rule must fire and how many times.
The driver materialises the fragment as a real package, runs *only* the
four interprocedural rule families (FLC008–FLC011), and asserts the
expected rule fires the expected number of times — and that the other
three families stay silent, so each mutant is caught by exactly the
intended rule.

The corpus directory is excluded from ``--include-tests`` sweeps (the
engine skips any path with a ``corpus`` component): these files are
test *data* whose defects are the point.
"""

import shutil
from pathlib import Path

import pytest

from repro.check import Baseline, Checker
from repro.check.rules import get_rule

CORPUS = Path(__file__).parent / "corpus"
NEW_FAMILIES = ("FLC008", "FLC009", "FLC010", "FLC011")


def corpus_cases():
    return sorted(p for p in CORPUS.iterdir() if p.is_dir())


def materialise(case: Path, tmp_path: Path) -> Path:
    """Copy the case fragment into a package tree rooted at repro/."""
    root = tmp_path / "src" / "repro"
    shutil.copytree(
        case, root, ignore=shutil.ignore_patterns("EXPECT.txt")
    )
    for directory in [root, *root.rglob("*")]:
        if directory.is_dir():
            init = directory / "__init__.py"
            if not init.exists():
                init.write_text("")
    return root


def expectation(case: Path):
    rule_id, count = (case / "EXPECT.txt").read_text().split()
    return rule_id, int(count)


@pytest.mark.parametrize(
    "case", corpus_cases(), ids=lambda case: case.name
)
def test_seeded_defect_caught_by_exactly_its_rule(case, tmp_path):
    expected_rule, expected_count = expectation(case)
    root = materialise(case, tmp_path)
    checker = Checker(
        root,
        rules=[get_rule(rule_id) for rule_id in NEW_FAMILIES],
        baseline=Baseline(),
    )
    report = checker.run()
    by_rule = {}
    for diag in report.new_findings:
        by_rule.setdefault(diag.rule_id, []).append(diag)
    assert expected_rule in by_rule, (
        f"{case.name}: {expected_rule} did not fire; "
        f"got {sorted(by_rule)}"
    )
    assert len(by_rule[expected_rule]) == expected_count, (
        f"{case.name}: expected {expected_count} {expected_rule} "
        f"finding(s), got {[d.format() for d in by_rule[expected_rule]]}"
    )
    others = {r: d for r, d in by_rule.items() if r != expected_rule}
    assert not others, (
        f"{case.name}: unrelated rules fired: "
        f"{ {r: [d.format() for d in ds] for r, ds in others.items()} }"
    )


def test_corpus_covers_every_new_family():
    seen = {expectation(case)[0] for case in corpus_cases()}
    assert seen == set(NEW_FAMILIES)


def test_corpus_has_three_or_more_cases_per_family():
    counts = {}
    for case in corpus_cases():
        rule_id, _ = expectation(case)
        counts[rule_id] = counts.get(rule_id, 0) + 1
    assert all(count >= 3 for count in counts.values()), counts
