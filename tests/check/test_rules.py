"""Per-rule fixtures: each rule id detects its hazard and nothing else."""

import textwrap
from pathlib import Path

from repro.check.engine import SourceModule
from repro.check.rules import get_rule


def module_from(source, module="repro.net.fixture"):
    relpath = module.replace(".", "/") + ".py"
    return SourceModule(
        Path("/fixture.py"), relpath, module, textwrap.dedent(source)
    )


def findings(rule_id, source, module="repro.net.fixture"):
    rule = get_rule(rule_id)
    mod = module_from(source, module)
    assert rule.applies_to(mod), f"{rule_id} does not apply to {module}"
    return list(rule.check(mod))


class TestFLC001Determinism:
    def test_wall_clock_read_flagged(self):
        found = findings(
            "FLC001",
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        assert len(found) == 1
        assert "time.time" in found[0].message

    def test_global_random_flagged(self):
        found = findings(
            "FLC001",
            """
            import random

            def jitter():
                return random.random()
            """,
        )
        assert len(found) == 1
        assert "process-global RNG" in found[0].message

    def test_legacy_numpy_flagged_through_alias(self):
        found = findings(
            "FLC001",
            """
            import numpy as np

            def noise(n):
                return np.random.rand(n)
            """,
        )
        assert len(found) == 1
        assert "legacy numpy.random" in found[0].message

    def test_seeded_constructions_clean(self):
        found = findings(
            "FLC001",
            """
            import random
            import numpy as np

            def make(seed):
                return random.Random(seed), np.random.default_rng(seed)
            """,
        )
        assert found == []

    def test_runner_layer_out_of_scope(self):
        # injected clocks in repro.runner are legitimate by design
        rule = get_rule("FLC001")
        mod = module_from("import time\nnow = time.monotonic()",
                          module="repro.runner.fixture")
        assert not rule.applies_to(mod)


class TestFLC002PickleSafety:
    def test_lambda_into_checkpointed_flagged(self):
        found = findings(
            "FLC002",
            """
            def job(ctx, build):
                return ctx.checkpointed(build, lambda run: run.finish())
            """,
            module="repro.runner.fixture",
        )
        assert len(found) == 1
        assert "checkpoint sink checkpointed" in found[0].message

    def test_lambda_into_supervisor_constructor_flagged(self):
        found = findings(
            "FLC002",
            """
            def make(SupervisedRunner):
                return SupervisedRunner(log=lambda m: None)
            """,
            module="repro.cli",
        )
        assert len(found) == 1

    def test_defaulted_lambda_attribute_flagged(self):
        found = findings(
            "FLC002",
            """
            class Runner:
                def __init__(self, log=None):
                    self._log = log or (lambda message: None)
            """,
            module="repro.runner.fixture",
        )
        assert len(found) == 1
        assert "instance attribute" in found[0].message

    def test_named_function_clean(self):
        found = findings(
            "FLC002",
            """
            def _finish(run):
                return run.finish()

            def job(ctx, build):
                return ctx.checkpointed(build, _finish)
            """,
            module="repro.runner.fixture",
        )
        assert found == []

    def test_local_lambda_outside_sinks_clean(self):
        # job-builder dicts and sort keys never reach pickled state
        found = findings(
            "FLC002",
            """
            def build(settings):
                jobs = {"fig02": lambda: settings}
                return sorted(jobs, key=lambda name: name)
            """,
            module="repro.runner.fixture",
        )
        assert found == []

    def test_attribute_lambda_outside_runner_layer_clean(self):
        found = findings(
            "FLC002",
            """
            class Model:
                def __init__(self):
                    self.fn = lambda x: x
            """,
            module="repro.tcp.fixture",
        )
        assert found == []


class TestFLC003FloatEquality:
    def test_rate_equality_flagged(self):
        found = findings(
            "FLC003",
            """
            def check(rate, target_rate):
                return rate == target_rate
            """,
        )
        assert len(found) == 1

    def test_float_literal_equality_flagged(self):
        found = findings(
            "FLC003",
            """
            def check(x):
                return x != 0.5
            """,
        )
        assert len(found) == 1

    def test_sentinel_comparison_clean(self):
        found = findings(
            "FLC003",
            """
            INFINITE_MTD = float("inf")

            def check(mtd):
                return mtd == INFINITE_MTD
            """,
        )
        assert found == []

    def test_integer_comparison_clean(self):
        found = findings(
            "FLC003",
            """
            def check(count, kind):
                return count == 5 and kind == "DATA"
            """,
        )
        assert found == []


class TestFLC004Units:
    def test_mixed_dimension_addition_flagged(self):
        found = findings(
            "FLC004",
            """
            def total(warmup_seconds, measure_ticks):
                return warmup_seconds + measure_ticks
            """,
        )
        assert len(found) == 1
        assert "time[s]" in found[0].message
        assert "time[tick]" in found[0].message

    def test_rate_comparison_across_units_flagged(self):
        found = findings(
            "FLC004",
            """
            def over(attack_rate_mbps, capacity_pkts_per_tick):
                return attack_rate_mbps > capacity_pkts_per_tick
            """,
        )
        assert len(found) == 1

    def test_same_dimension_clean(self):
        found = findings(
            "FLC004",
            """
            def total(warmup_seconds, measure_seconds):
                return warmup_seconds + measure_seconds
            """,
        )
        assert found == []

    def test_multiplication_clean(self):
        # mult/div legitimately combine dimensions (Mbps * seconds = volume)
        found = findings(
            "FLC004",
            """
            def volume(rate_mbps, window_seconds):
                return rate_mbps * window_seconds
            """,
        )
        assert found == []


class TestFLC005MutableDefaults:
    def test_list_default_flagged(self):
        found = findings(
            "FLC005",
            """
            def record(value, history=[]):
                history.append(value)
                return history
            """,
        )
        assert len(found) == 1

    def test_numpy_buffer_default_flagged(self):
        found = findings(
            "FLC005",
            """
            import numpy as np

            def simulate(n, buf=np.zeros(16)):
                return buf[:n]
            """,
        )
        assert len(found) == 1

    def test_none_and_tuple_defaults_clean(self):
        found = findings(
            "FLC005",
            """
            def simulate(n, buf=None, modes=("cbr", "shrew")):
                return buf, modes, n
            """,
        )
        assert found == []


class TestFLC007SpawnSafety:
    def test_lambda_into_fleet_sink_flagged(self):
        found = findings(
            "FLC007",
            """
            def dispatch(tasks, store, run_fleet):
                return run_fleet([lambda ctx: 1], store)
            """,
            module="repro.fleet.fixture",
        )
        assert len(found) == 1
        assert "pickle" in found[0].message

    def test_lambda_process_target_flagged(self):
        found = findings(
            "FLC007",
            """
            def spawn(ctx):
                return ctx.Process(target=lambda: None)
            """,
            module="repro.fleet.fixture",
        )
        assert len(found) == 1

    def test_fork_context_flagged(self):
        found = findings(
            "FLC007",
            """
            from multiprocessing import get_context

            def pool():
                return get_context("fork")
            """,
            module="repro.fleet.fixture",
        )
        assert len(found) == 1
        assert "spawn" in found[0].hint

    def test_spawn_context_clean(self):
        found = findings(
            "FLC007",
            """
            from multiprocessing import get_context

            def pool():
                return get_context("spawn")
            """,
            module="repro.fleet.fixture",
        )
        assert found == []

    def test_module_global_mutation_flagged(self):
        found = findings(
            "FLC007",
            """
            RESULTS = {}

            def record(name, value):
                RESULTS[name] = value
            """,
            module="repro.fleet.fixture",
        )
        assert len(found) == 1
        assert "RESULTS" in found[0].message

    def test_global_rebind_flagged(self):
        found = findings(
            "FLC007",
            """
            SEEN = []

            def reset():
                global SEEN
                SEEN = []
            """,
            module="repro.fleet.fixture",
        )
        assert len(found) == 1

    def test_mutator_method_on_global_flagged(self):
        found = findings(
            "FLC007",
            """
            PENDING = []

            def enqueue_local(item):
                PENDING.append(item)
            """,
            module="repro.fleet.fixture",
        )
        assert len(found) == 1
        assert ".append()" in found[0].message

    def test_local_shadow_is_clean(self):
        found = findings(
            "FLC007",
            """
            PENDING = []

            def drain():
                PENDING = []
                PENDING.append(1)
                return PENDING
            """,
            module="repro.fleet.fixture",
        )
        assert found == []

    def test_instance_state_is_clean(self):
        found = findings(
            "FLC007",
            """
            class Run:
                def __init__(self):
                    self.pending = []

                def enqueue_local(self, item):
                    self.pending.append(item)
            """,
            module="repro.fleet.fixture",
        )
        assert found == []

    def test_out_of_scope_module_skipped(self):
        rule = get_rule("FLC007")
        mod = module_from(
            """
            CACHE = {}

            def put(k, v):
                CACHE[k] = v
            """,
            module="repro.net.fixture",
        )
        assert not rule.applies_to(mod)


class TestFLC001TraceScope:
    def test_wall_clock_in_trace_package_flagged(self):
        found = findings(
            "FLC001",
            """
            import time

            def stamp():
                return time.time()
            """,
            module="repro.trace.fixture",
        )
        assert len(found) == 1

    def test_trace_clock_module_is_the_carve_out(self):
        found = findings(
            "FLC001",
            """
            import time

            def wall_now():
                return time.time()
            """,
            module="repro.trace.clock",
        )
        assert found == []


class TestFLC012SpanHygiene:
    def test_bare_span_expression_flagged(self):
        found = findings(
            "FLC012",
            """
            def go(tracer):
                tracer.span("unit")
            """,
        )
        assert len(found) == 1
        assert "immediately dropped" in found[0].message

    def test_unclosed_local_assignment_flagged(self):
        found = findings(
            "FLC012",
            """
            def go(tracer):
                span = tracer.span("unit")
                span.event("x")
            """,
        )
        assert len(found) == 1
        assert "'span' is never closed" in found[0].message

    def test_with_closure_clean(self):
        found = findings(
            "FLC012",
            """
            def go(tracer):
                with tracer.span("unit"):
                    pass
            """,
        )
        assert found == []

    def test_try_finally_end_clean(self):
        found = findings(
            "FLC012",
            """
            def go(tracer):
                span = tracer.span("unit")
                try:
                    work()
                finally:
                    span.end(status="done")
            """,
        )
        assert found == []

    def test_stored_handle_clean(self):
        # the fleet pool pattern: open here, closed in another sweep
        found = findings(
            "FLC012",
            """
            def dispatch(self, tracer, name):
                self.task_spans[name] = tracer.span(name)

            def hold(self, tracer):
                span = tracer.span("job")
                self.job_span = span
            """,
        )
        assert found == []

    def test_returned_handle_clean(self):
        found = findings(
            "FLC012",
            """
            def open_span(tracer, name):
                return tracer.span(name)
            """,
        )
        assert found == []

    def test_factory_receiver_flagged(self):
        found = findings(
            "FLC012",
            """
            from repro.trace import current_tracer

            def go():
                current_tracer().span("unit")
            """,
        )
        assert len(found) == 1

    def test_unrelated_span_attribute_ignored(self):
        # .span on a non-tracer receiver is a different domain entirely
        found = findings(
            "FLC012",
            """
            def go(window):
                window.span("x")
            """,
        )
        assert found == []

    def test_pickle_call_in_trace_package_flagged(self):
        found = findings(
            "FLC012",
            """
            import pickle

            def snapshot(spans):
                return pickle.dumps(spans)
            """,
            module="repro.trace.fixture",
        )
        assert len(found) == 1
        assert "must never be pickled" in found[0].message

    def test_pickle_call_outside_trace_package_ignored(self):
        found = findings(
            "FLC012",
            """
            import pickle

            def snapshot(obj):
                return pickle.dumps(obj)
            """,
            module="repro.fleet.fixture",
        )
        assert found == []

    def test_nonempty_getstate_in_trace_package_flagged(self):
        found = findings(
            "FLC012",
            """
            class Sink:
                def __getstate__(self):
                    return {"spans": self.spans}
            """,
            module="repro.trace.fixture",
        )
        assert len(found) == 1
        assert "__getstate__" in found[0].message

    def test_empty_getstate_shapes_clean(self):
        found = findings(
            "FLC012",
            """
            class A:
                def __getstate__(self):
                    return {}

            class B:
                def __getstate__(self):
                    return dict()

            class C:
                def __getstate__(self):
                    return None
            """,
            module="repro.trace.fixture",
        )
        assert found == []
