"""The shipped baseline exactly matches the current tree's findings.

This is the drift lock: a new finding fails (fix it or baseline it with a
justification), and a baseline entry whose finding was fixed fails too
(delete the entry).  `repro check --strict` in CI enforces the same.
"""

from repro.check import Checker


def test_shipped_baseline_exactly_matches_tree():
    report = Checker.for_package().run()
    assert report.new_findings == [], (
        "unbaselined findings:\n"
        + "\n".join(d.format() for d in report.new_findings)
    )
    assert report.stale_baseline == [], (
        "stale baseline entries (finding fixed? delete the entry):\n"
        + "\n".join(e.describe() for e in report.stale_baseline)
    )
    assert report.strict_ok()


def test_every_rule_family_ran_over_the_tree():
    checker = Checker.for_package()
    ran = {rule.rule_id for rule in checker.rules}
    assert {
        "FLC001", "FLC002", "FLC003", "FLC004", "FLC005", "FLC006",
        "FLC007", "FLC008", "FLC009", "FLC010", "FLC011", "FLC012",
    } <= ran
    assert checker.run().modules_checked > 50
