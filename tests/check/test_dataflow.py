"""The forward taint pass: sources, sanitizers, sinks, summaries."""

import ast

from repro.check.dataflow import (
    SinkSpec,
    TaintPolicy,
    analyze_function,
    fixpoint_summaries,
)


def first_function(source):
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            return node
    raise AssertionError("no function in source")


def digest_sink():
    return SinkSpec(
        match=lambda call, resolved, terminal: (
            "digest" if resolved and resolved.startswith("hashlib.") else None
        ),
    )


def base_policy(**overrides):
    policy = TaintPolicy(
        sources={"time.time": ("wall-clock", "time.time()")},
        sinks=[digest_sink()],
    )
    for name, value in overrides.items():
        setattr(policy, name, value)
    return policy


def run(source, policy, seed_params=False):
    return analyze_function(
        first_function(source),
        {"time": "time", "hashlib": "hashlib", "np": "numpy"},
        policy,
        seed_params=seed_params,
    )


class TestSourceToSink:
    def test_direct_flow(self):
        summary = run(
            """
def f():
    stamp = time.time()
    hashlib.sha256(str(stamp).encode())
""",
            base_policy(),
        )
        assert len(summary.hits) == 1
        assert summary.hits[0].sink == "digest"
        assert summary.hits[0].taint.kind == "wall-clock"

    def test_flow_through_fstring_and_container(self):
        summary = run(
            """
def f():
    stamp = time.time()
    payload = {"at": f"t={stamp}"}
    hashlib.sha256(repr(payload).encode())
""",
            base_policy(),
        )
        assert len(summary.hits) == 1

    def test_clean_value_is_silent(self):
        summary = run(
            """
def f(tick):
    hashlib.sha256(str(tick).encode())
""",
            base_policy(),
        )
        assert summary.hits == []

    def test_reassignment_clears_taint(self):
        summary = run(
            """
def f():
    stamp = time.time()
    stamp = 0.0
    hashlib.sha256(str(stamp).encode())
""",
            base_policy(),
        )
        assert summary.hits == []

    def test_loop_back_edge_needs_second_pass(self):
        # `acc` is tainted only at the *end* of the loop body; the
        # sink earlier in the body sees it on the second sweep.
        summary = run(
            """
def f(items, acc):
    for _ in items:
        hashlib.sha256(str(acc).encode())
        acc = acc + time.time()
""",
            base_policy(),
        )
        assert len(summary.hits) == 1


class TestSanitizersAndTerminals:
    def test_sanitizer_erases(self):
        summary = run(
            """
def f():
    stamp = time.time()
    clean = launder(stamp)
    hashlib.sha256(str(clean).encode())
""",
            base_policy(sanitizers={"launder"}),
        )
        assert summary.hits == []

    def test_source_terminal_matches_any_receiver(self):
        policy = base_policy(
            source_terminals={"reshape": ("view", ".reshape()")},
        )
        summary = run(
            """
def f(grid):
    flat = grid.reshape(-1)
    hashlib.sha256(flat)
""",
            policy,
        )
        assert [hit.taint.kind for hit in summary.hits] == ["view"]

    def test_calls_propagate_false_launders_unknown_calls(self):
        policy = base_policy(calls_propagate=False)
        summary = run(
            """
def f():
    stamp = time.time()
    total = accumulate(stamp)
    hashlib.sha256(str(total).encode())
""",
            policy,
        )
        assert summary.hits == []

    def test_view_subscript_taints_slice(self):
        policy = TaintPolicy(
            sinks=[digest_sink()], view_subscripts=True,
        )
        summary = run(
            """
def f(vec, lo, hi):
    part = vec[lo:hi]
    hashlib.sha256(part)
""",
            policy,
        )
        assert [hit.taint.kind for hit in summary.hits] == ["view"]

    def test_plain_index_is_not_a_view(self):
        policy = TaintPolicy(
            sinks=[digest_sink()], view_subscripts=True,
        )
        summary = run(
            """
def f(vec):
    item = vec[0]
    hashlib.sha256(item)
""",
            policy,
        )
        assert summary.hits == []


class TestSinkSelection:
    def test_positional_index_and_kwargs_selection(self):
        spec = SinkSpec(
            match=lambda call, resolved, terminal: (
                "payload" if terminal == "save" else None
            ),
            args=[2],
            kwargs=("obj",),
        )
        policy = TaintPolicy(
            sources={"time.time": ("wall-clock", "time.time()")},
            sinks=[spec],
        )
        summary = run(
            """
def f(store):
    stamp = time.time()
    store.save(1, "key", stamp)
    store.save(stamp, "key", 0)
    store.save(1, "key", obj=stamp)
""",
            policy,
        )
        # arg index 2 and kwarg obj= hit; tainted arg 0 is ignored
        assert len(summary.hits) == 2


class TestSummaries:
    def test_param_sinks_recorded_not_reported(self):
        summary = run(
            """
def digest_of(payload):
    return hashlib.sha256(repr(payload).encode())
""",
            base_policy(),
            seed_params=True,
        )
        assert summary.hits == []
        assert summary.param_sinks == {"payload": {"digest"}}

    def test_returns_tainted_excludes_params(self):
        summary = run(
            """
def stamp(tick):
    return (tick, time.time())
""",
            base_policy(),
            seed_params=True,
        )
        kinds = {taint.kind for taint in summary.returns_tainted}
        assert kinds == {"wall-clock"}

    def test_fixpoint_propagates_returns_through_callers(self):
        tree = ast.parse(
            """
def token():
    return time.time()

def publish():
    hashlib.sha256(str(token()).encode())
"""
        )
        aliases = {"time": "time", "hashlib": "hashlib", "token": "m.token"}
        functions = {
            "m." + node.name: (node, aliases)
            for node in tree.body
            if isinstance(node, ast.FunctionDef)
        }

        def factory(tainted_returns, summaries):
            return TaintPolicy(
                sources={"time.time": ("wall-clock", "time.time()")},
                sinks=[digest_sink()],
                tainted_calls=dict(tainted_returns),
            )

        summaries = fixpoint_summaries(functions, factory)
        assert len(summaries["m.publish"].hits) == 1
        assert summaries["m.publish"].hits[0].taint.kind == "wall-clock"

    def test_fixpoint_derives_param_sinks_at_call_sites(self):
        tree = ast.parse(
            """
def digest_of(payload):
    return hashlib.sha256(repr(payload).encode())

def stamp():
    digest_of(time.time())
"""
        )
        aliases = {
            "time": "time",
            "hashlib": "hashlib",
            "digest_of": "m.digest_of",
        }
        functions = {
            "m." + node.name: (node, aliases)
            for node in tree.body
            if isinstance(node, ast.FunctionDef)
        }

        def factory(tainted_returns, summaries):
            sinks = [digest_sink()]
            for qualname, summary in summaries.items():
                for param, labels in summary.param_sinks.items():
                    fn = qualname
                    sinks.append(
                        SinkSpec(
                            match=(
                                lambda call, resolved, terminal, fn=fn: (
                                    "derived"
                                    if resolved == fn
                                    else None
                                )
                            ),
                        )
                    )
            return TaintPolicy(
                sources={"time.time": ("wall-clock", "time.time()")},
                sinks=sinks,
                tainted_calls=dict(tainted_returns),
            )

        summaries = fixpoint_summaries(functions, factory)
        labels = {hit.sink for hit in summaries["m.stamp"].hits}
        assert "derived" in labels
