"""Engine behaviour: suppression, baselines, project rules, exit codes."""

import json
import textwrap

import pytest

from repro.check import Baseline, BaselineEntry, Checker
from repro.check.baseline import MatchResult
from repro.check.rules import get_rule
from repro.cli import main as cli_main
from repro.errors import ConfigError

BAD_NET_MODULE = """\
import time


def stamp():
    return time.time()
"""


def write_package(tmp_path, files):
    """Materialise {relpath: source} as a package tree rooted at repro/."""
    root = tmp_path / "src" / "repro"
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        init = path.parent / "__init__.py"
        if not init.exists():
            init.write_text("")
    if not (root / "__init__.py").exists():
        (root / "__init__.py").write_text("")
    return root


class TestSuppression:
    def test_disable_comment_suppresses(self, tmp_path):
        root = write_package(tmp_path, {
            "net/mod.py": """\
                import time


                def stamp():
                    return time.time()  # flocheck: disable=FLC001 -- test fixture
                """,
        })
        report = Checker(root, baseline=Baseline()).run()
        assert report.new_findings == []
        assert len(report.suppressed) == 1
        assert report.suppressed[0].rule_id == "FLC001"

    def test_disable_all(self, tmp_path):
        root = write_package(tmp_path, {
            "net/mod.py": """\
                import time


                def stamp():
                    return time.time()  # flocheck: disable=all -- test fixture
                """,
        })
        report = Checker(root, baseline=Baseline()).run()
        assert report.new_findings == []
        assert len(report.suppressed) == 1

    def test_other_rule_not_suppressed(self, tmp_path):
        root = write_package(tmp_path, {
            "net/mod.py": """\
                import time


                def stamp():
                    return time.time()  # flocheck: disable=FLC005 -- test fixture
                """,
        })
        report = Checker(root, baseline=Baseline()).run()
        assert [d.rule_id for d in report.new_findings] == ["FLC001"]


# Built by concatenation so this file never contains a literal
# reasonless suppression — the --include-tests sweep scans this very
# file, and the hygiene scan is line-based.
REASONLESS_SUPPRESS = "# " + "flocheck: disable="


class TestSuppressionHygiene:
    REASONLESS = {
        "net/mod.py": f"""\
            import time


            def stamp():
                return time.time()  {REASONLESS_SUPPRESS}FLC001
            """,
    }

    def test_reasonless_comment_is_inert(self, tmp_path):
        """A suppression without '-- <reason>' does not suppress."""
        root = write_package(tmp_path, self.REASONLESS)
        report = Checker(root, baseline=Baseline()).run()
        assert "FLC001" in [d.rule_id for d in report.new_findings]
        assert report.suppressed == []

    def test_reasonless_comment_emits_flc099(self, tmp_path):
        root = write_package(tmp_path, self.REASONLESS)
        report = Checker(root, baseline=Baseline()).run()
        hygiene = [d for d in report.new_findings if d.rule_id == "FLC099"]
        assert len(hygiene) == 1
        assert "reason" in hygiene[0].message

    def test_flc099_cannot_be_suppressed(self, tmp_path):
        root = write_package(tmp_path, {
            "net/mod.py": f"""\
                import time


                def stamp():
                    return time.time()  {REASONLESS_SUPPRESS}all
                """,
        })
        report = Checker(root, baseline=Baseline()).run()
        assert "FLC099" in [d.rule_id for d in report.new_findings]

    def test_reasoned_comment_emits_nothing(self, tmp_path):
        root = write_package(tmp_path, {
            "net/mod.py": """\
                import time


                def stamp():
                    return time.time()  # flocheck: disable=FLC001 -- test fixture
                """,
        })
        report = Checker(root, baseline=Baseline()).run()
        assert report.new_findings == []

    def test_suppression_records_capture_reason_state(self, tmp_path):
        root = write_package(tmp_path, {
            "net/mod.py": f"""\
                import time


                def good():
                    return time.time()  {REASONLESS_SUPPRESS}FLC001 -- test fixture


                def bad():
                    return time.time()  {REASONLESS_SUPPRESS}FLC001
                """,
        })
        report = Checker(root, baseline=Baseline()).run()
        records = {
            record.line: record
            for relpath, record in report.suppression_records
        }
        assert len(records) == 2
        well_formed = [r for r in records.values() if r.well_formed]
        assert len(well_formed) == 1
        assert well_formed[0].reason == "test fixture"
        assert all("FLC001" in r.ids for r in records.values())


class TestExtraRoots:
    EXTERNAL = {
        # FLC001 (wall-clock) material AND FLC007 (global mutation)
        # material in one external file
        "test_thing.py": """\
            import time

            _CACHE = {}


            def test_records():
                _CACHE["at"] = time.time()
            """,
    }

    def write_external(self, tmp_path):
        extra = tmp_path / "tests"
        extra.mkdir()
        for relpath, source in self.EXTERNAL.items():
            (extra / relpath).write_text(textwrap.dedent(source))
        return extra

    def test_external_modules_get_relaxed_rule_subset(self, tmp_path):
        root = write_package(tmp_path, {"net/mod.py": "X = 1\n"})
        extra = self.write_external(tmp_path)
        report = Checker(
            root, baseline=Baseline(), extra_roots=[extra]
        ).run()
        external = [
            d for d in report.new_findings if d.path.startswith("tests/")
        ]
        rules = {d.rule_id for d in external}
        assert "FLC007" in rules  # relaxed subset still runs
        assert "FLC001" not in rules  # full subset does not

    def test_corpus_directories_are_excluded(self, tmp_path):
        root = write_package(tmp_path, {"net/mod.py": "X = 1\n"})
        extra = self.write_external(tmp_path)
        corpus = extra / "corpus" / "case_a"
        corpus.mkdir(parents=True)
        (corpus / "mutant.py").write_text("import time\nT = time.time()\n")
        report = Checker(
            root, baseline=Baseline(), extra_roots=[extra]
        ).run()
        assert not any(
            "corpus" in d.path for d in report.new_findings
        )

    def test_missing_extra_root_is_config_error(self, tmp_path):
        root = write_package(tmp_path, {"net/mod.py": "X = 1\n"})
        with pytest.raises(ConfigError):
            Checker(
                root,
                baseline=Baseline(),
                extra_roots=[tmp_path / "nope"],
            )


class TestBaseline:
    def test_round_trip_and_match(self, tmp_path):
        root = write_package(tmp_path, {"net/mod.py": BAD_NET_MODULE})
        report = Checker(root, baseline=Baseline()).run()
        assert len(report.new_findings) == 1

        baseline = Baseline.from_findings(report.new_findings)
        path = tmp_path / "baseline.json"
        baseline.save(str(path))
        reloaded = Baseline.load(str(path))
        assert len(reloaded) == 1

        report2 = Checker(root, baseline=reloaded).run()
        assert report2.new_findings == []
        assert len(report2.baselined) == 1
        assert report2.stale_baseline == []
        assert report2.strict_ok()

    def test_baseline_survives_line_shift(self, tmp_path):
        root = write_package(tmp_path, {"net/mod.py": BAD_NET_MODULE})
        baseline = Baseline.from_findings(
            Checker(root, baseline=Baseline()).run().new_findings
        )
        # unrelated edit above the finding shifts its line number
        (root / "net" / "mod.py").write_text(
            "# a new leading comment\n" + BAD_NET_MODULE
        )
        report = Checker(root, baseline=baseline).run()
        assert report.new_findings == []
        assert len(report.baselined) == 1

    def test_fixed_finding_makes_entry_stale(self, tmp_path):
        root = write_package(tmp_path, {"net/mod.py": BAD_NET_MODULE})
        baseline = Baseline.from_findings(
            Checker(root, baseline=Baseline()).run().new_findings
        )
        (root / "net" / "mod.py").write_text("def stamp():\n    return 0\n")
        report = Checker(root, baseline=baseline).run()
        assert report.new_findings == []
        assert len(report.stale_baseline) == 1
        assert report.ok
        assert not report.strict_ok()

    def test_duplicate_entries_rejected(self):
        entry = BaselineEntry(rule="FLC001", path="a.py", line_content="x")
        with pytest.raises(ConfigError):
            Baseline([entry, entry])

    def test_count_semantics(self):
        entry = BaselineEntry(
            rule="FLC001", path="a.py", line_content="x", count=2
        )
        from repro.check.diagnostics import Diagnostic, Severity

        def d():
            return Diagnostic(
                rule_id="FLC001", severity=Severity.ERROR, path="a.py",
                line=1, col=0, message="m", line_content="x",
            )

        result = Baseline([entry]).match([d(), d(), d()])
        assert isinstance(result, MatchResult)
        assert len(result.baselined) == 2
        assert len(result.new) == 1  # third occurrence exceeds the count
        assert result.stale == []

        partial = Baseline([entry]).match([d()])
        assert len(partial.baselined) == 1
        assert partial.stale == [entry]  # undershooting the count is stale


class TestParseErrors:
    def test_syntax_error_is_flc000(self, tmp_path):
        root = write_package(tmp_path, {"net/broken.py": "def f(:\n"})
        report = Checker(root, baseline=Baseline()).run()
        assert [d.rule_id for d in report.new_findings] == ["FLC000"]


DRIFT_FILES = {
    "cli.py": textwrap.dedent("""\
        def build_parser(parser):
            parser.add_argument("--scale")
            parser.add_argument("--warmup")
            parser.add_argument("--seconds")
            parser.add_argument("--seed")
            parser.add_argument("--sanitize")
        """),
    "experiments/common.py": textwrap.dedent("""\
        from dataclasses import dataclass


        @dataclass
        class FunctionalSettings:
            scale: float = 1.0
            warmup_seconds: float = 4.0
            measure_seconds: float = 8.0
            seed: int = 1
            s_max: int = 25
            sanitize: str = "off"
        """),
    "core/config.py": textwrap.dedent("""\
        from dataclasses import dataclass


        @dataclass
        class FLocConfig:
            n_max: int = 2
            beta: float = 0.2
        """),
}

DRIFT_DOCS = textwrap.dedent("""\
    # Arch

    ## FLoc configuration reference

    | field | default | meaning |
    |---|---|---|
    | `n_max` | 2 | fanout limit |
    | `beta` | 0.2 | conformance EWMA |
    """)


class TestProjectRuleConfigDrift:
    FILES = DRIFT_FILES
    DOCS = DRIFT_DOCS

    def build(self, tmp_path, files=None, docs=DRIFT_DOCS):
        root = write_package(tmp_path, files or self.FILES)
        if docs is not None:
            docs_dir = tmp_path / "docs"
            docs_dir.mkdir(exist_ok=True)
            (docs_dir / "architecture.md").write_text(textwrap.dedent(docs))
        return Checker(root, rules=[get_rule("FLC006")], baseline=Baseline())

    def test_consistent_project_clean(self, tmp_path):
        assert self.build(tmp_path).run().new_findings == []

    def test_unmapped_settings_field_flagged(self, tmp_path):
        files = dict(self.FILES)
        files["experiments/common.py"] = files["experiments/common.py"].replace(
            'sanitize: str = "off"',
            'sanitize: str = "off"\n    brand_new_knob: int = 0',
        )
        found = self.build(tmp_path, files=files).run().new_findings
        assert any("brand_new_knob" in d.message for d in found)

    def test_vanished_cli_flag_flagged(self, tmp_path):
        files = dict(self.FILES)
        files["cli.py"] = files["cli.py"].replace(
            '    parser.add_argument("--seed")\n', ""
        )
        found = self.build(tmp_path, files=files).run().new_findings
        assert any("--seed" in d.message for d in found)

    def test_undocumented_config_field_flagged(self, tmp_path):
        docs = self.DOCS.replace("| `beta` | 0.2 | conformance EWMA |\n", "")
        found = self.build(tmp_path, docs=docs).run().new_findings
        assert any(
            "beta" in d.message and "missing from" in d.message for d in found
        )

    def test_stale_docs_row_flagged(self, tmp_path):
        docs = self.DOCS + "| `retired_knob` | 0 | gone |\n"
        found = self.build(tmp_path, docs=docs).run().new_findings
        assert any("retired_knob" in d.message for d in found)

    def test_missing_section_flagged(self, tmp_path):
        found = self.build(tmp_path, docs="# Arch\n\nno table\n").run().new_findings
        assert len(found) == 1
        assert "no 'FLoc configuration reference' section" in found[0].message

    def test_missing_docs_tree_skipped(self, tmp_path):
        # installed package without docs/: nothing to cross-check
        checker = self.build(tmp_path, docs=None)
        assert checker.run().new_findings == []


class TestCliCheck:
    def test_clean_tree_exits_zero(self, capsys):
        assert cli_main(["check"]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_strict_clean_tree_exits_zero(self, capsys):
        assert cli_main(["check", "--strict"]) == 0

    def test_list_rules(self, capsys):
        assert cli_main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("FLC001", "FLC002", "FLC003", "FLC004",
                        "FLC005", "FLC006", "FLC007", "FLC008",
                        "FLC009", "FLC010", "FLC011"):
            assert rule_id in out

    def test_stale_baseline_fails_strict_only(self, tmp_path, capsys):
        bogus = tmp_path / "baseline.json"
        bogus.write_text(json.dumps({
            "version": 1,
            "findings": [{
                "rule": "FLC001",
                "path": "repro/net/engine.py",
                "line_content": "this_line_does_not_exist()",
                "count": 1,
                "justification": "test fixture",
            }],
        }))
        assert cli_main(["check", "--baseline", str(bogus)]) == 0
        assert cli_main(["check", "--strict", "--baseline", str(bogus)]) == 1
        assert "stale baseline entry" in capsys.readouterr().out

    def test_unknown_path_is_config_error(self, capsys):
        assert cli_main(["check", "does/not/exist.py"]) == 2

    def test_subset_run(self, capsys):
        import repro.core
        core_dir = repro.core.__file__.rsplit("/", 1)[0]
        assert cli_main(["check", core_dir]) == 0

    def test_sarif_and_show_suppressed(self, tmp_path, capsys):
        out = tmp_path / "flocheck.sarif"
        assert cli_main(
            ["check", "--strict", "--sarif", str(out), "--show-suppressed"]
        ) == 0
        document = json.loads(out.read_text())
        assert document["version"] == "2.1.0"
        assert document["runs"][0]["tool"]["driver"]["name"] == "flocheck"
        text = capsys.readouterr().out
        # every in-tree suppression is listed, with its reason
        assert "suppression" in text
        assert "NO REASON" not in text

    def test_graph_mode(self, capsys):
        assert cli_main(["check", "--graph"]) == 0
        out = capsys.readouterr().out
        assert "functions" in out
        assert "spawn entrypoints" in out

    def test_include_tests_widens_the_sweep(self, capsys):
        assert cli_main(["check", "--strict", "--include-tests"]) == 0
        out = capsys.readouterr().out
        # the widened sweep checks strictly more modules than the package
        modules = int(out.split(" modules checked")[0].rsplit(None, 1)[-1])
        assert modules > 150
