"""Direct coverage for the AST helpers every rule builds on."""

import ast

from repro.check.astutil import (
    dotted_name,
    import_aliases,
    is_constant_name,
    resolve_call_name,
    terminal_identifier,
)


def expr(source):
    return ast.parse(source, mode="eval").body


class TestDottedName:
    def test_plain_name(self):
        assert dotted_name(expr("x")) == "x"

    def test_attribute_chain(self):
        assert dotted_name(expr("a.b.c")) == "a.b.c"

    def test_call_in_chain_is_none(self):
        assert dotted_name(expr("a().b")) is None

    def test_subscript_is_none(self):
        assert dotted_name(expr("a[0].b")) is None


class TestImportAliases:
    def test_plain_import(self):
        tree = ast.parse("import time")
        assert import_aliases(tree) == {"time": "time"}

    def test_import_as(self):
        tree = ast.parse("import numpy as np")
        assert import_aliases(tree) == {"np": "numpy"}

    def test_dotted_import_binds_head(self):
        tree = ast.parse("import os.path")
        assert import_aliases(tree) == {"os": "os"}

    def test_dotted_import_as_binds_full(self):
        tree = ast.parse("import os.path as osp")
        assert import_aliases(tree) == {"osp": "os.path"}

    def test_from_import(self):
        tree = ast.parse("from random import random as rnd")
        assert import_aliases(tree) == {"rnd": "random.random"}

    def test_relative_import_skipped(self):
        tree = ast.parse("from .shard import BarrierExchange")
        assert import_aliases(tree) == {}

    def test_star_import_skipped(self):
        tree = ast.parse("from os import *")
        assert import_aliases(tree) == {}


class TestResolveCallName:
    def test_alias_expansion(self):
        aliases = {"np": "numpy"}
        assert resolve_call_name(expr("np.random.rand"), aliases) == (
            "numpy.random.rand"
        )

    def test_bare_from_import(self):
        aliases = {"rnd": "random.random"}
        assert resolve_call_name(expr("rnd"), aliases) == "random.random"

    def test_unaliased_head_passes_through(self):
        assert resolve_call_name(expr("store.save"), {}) == "store.save"

    def test_dynamic_callee_is_none(self):
        assert resolve_call_name(expr("factory().save"), {}) is None


class TestTerminalIdentifier:
    def test_name(self):
        assert terminal_identifier(expr("rate")) == "rate"

    def test_attribute(self):
        assert terminal_identifier(expr("self.lambda_rate")) == "lambda_rate"

    def test_call_resolves_through_callee(self):
        assert terminal_identifier(expr("x.rate()")) == "rate"

    def test_literal_is_none(self):
        assert terminal_identifier(expr("3")) is None


class TestIsConstantName:
    def test_upper_is_constant(self):
        assert is_constant_name(expr("INFINITE_MTD"))

    def test_lower_is_not(self):
        assert not is_constant_name(expr("rate"))

    def test_attribute_terminal_counts(self):
        assert is_constant_name(expr("units.INFINITE_MTD"))
