"""Clean helper: hashes whatever payload it is handed."""

import hashlib


def digest_of(payload):
    h = hashlib.sha256()
    h.update(payload)
    return h.hexdigest()
