"""Seeded defect: wall clock reaches the digest through a parameter."""

import time

from ..util.hashing_helper import digest_of


def stamp():
    return digest_of(str(time.time()).encode())
