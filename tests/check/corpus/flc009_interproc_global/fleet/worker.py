"""Spawn entrypoint reaching the global mutation two modules away."""

from ..stats.registry_mutant import record


def worker_main(config):
    record("started", config)
