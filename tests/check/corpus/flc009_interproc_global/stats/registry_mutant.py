"""Module outside the fleet layers with a mutable module global."""

_RECORDS = {}


def record(name, value):
    _RECORDS[name] = value
