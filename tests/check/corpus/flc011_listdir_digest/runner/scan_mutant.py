"""Seeded defect: unsorted directory listing hashed into a digest."""

import hashlib
import os


def tree_digest(root):
    h = hashlib.sha256()
    for name in os.listdir(root):
        h.update(name.encode())
    return h.hexdigest()
