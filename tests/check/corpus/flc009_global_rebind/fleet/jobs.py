"""Task descriptor whose run() reaches the global rebind."""

from ..util.state_mutant import install


class MutantTask:
    def run(self, ctx):
        install(ctx)
