"""Module-global rebinding reachable from a task run method."""

_active = None


def install(value):
    global _active
    _active = value
