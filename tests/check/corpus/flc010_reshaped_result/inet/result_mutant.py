"""Seeded defect: a reshape view shipped inside a shard result."""


class ShardResult:
    def __init__(self, owned):
        self.owned = owned


def pack(grid):
    flat = grid.reshape(-1)
    return ShardResult(owned=flat)
