"""Seeded defect: barrier poll loop with no timeout raise."""

import os
import time


def wait_for_piece(path):
    while not os.path.exists(path):
        time.sleep(0.01)
    return path
