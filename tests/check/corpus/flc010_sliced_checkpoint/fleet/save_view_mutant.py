"""Seeded defect: a slice view persisted into the checkpoint store."""


def persist_window(store, name, vec, lo, hi):
    piece = vec[lo:hi]
    store.save("unit", name, piece)
