"""Seeded defect: array mutated in place after being published."""


class Publisher:
    def exchange(self, tick, key, buf):
        self._publish(tick, key, buf)
        buf[0] = 0.0
        return buf

    def _publish(self, tick, key, payload):
        return None
