"""Seeded defect: collect called before publish in the same round."""


class PieceExchange:
    def allreduce(self, tick, payload):
        peers = self._collect(tick)
        self._publish(tick, "round", payload)
        return peers

    def _collect(self, tick):
        return []

    def _publish(self, tick, key, payload):
        return None
