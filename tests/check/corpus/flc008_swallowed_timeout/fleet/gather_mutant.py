"""Seeded defect: barrier timeout swallowed instead of propagated."""


class ShardBarrierTimeout(Exception):
    pass


def gather(exchange, tick):
    try:
        return exchange.fetch(tick)
    except ShardBarrierTimeout:
        return None
