"""Seeded defect: barrier tick moved backwards."""


class TickWindow:
    def __init__(self):
        self.tick = 0

    def rewind(self):
        self.tick -= 1
