"""Seeded defect: the original pool.py quarantine torn write."""

import json


def write_reproducer(path, payload):
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
