"""Seeded defect: wall-clock value hashed into a run digest."""

import hashlib
import time


def stamp_digest():
    h = hashlib.sha256()
    h.update(str(time.time()).encode())
    return h.hexdigest()
