"""Seeded defect: barrier file written non-atomically."""

import os


class RawBarrierExchange:
    def __init__(self, root):
        self.root = root

    def publish_piece(self, tick, data):
        path = os.path.join(self.root, f"piece-{tick}.bin")
        with open(path, "wb") as fh:
            fh.write(data)
