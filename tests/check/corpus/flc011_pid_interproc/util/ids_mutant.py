"""Helper returning an impure value (pid) for its callers."""

import os


def run_token():
    return os.getpid()
