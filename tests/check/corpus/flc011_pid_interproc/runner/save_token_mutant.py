"""Caller persisting the pid two calls away from its source."""

from ..util.ids_mutant import run_token


def persist(store, name):
    store.save("meta", name, run_token())
