"""Seeded defect: heartbeat file written non-atomically."""


def pulse(path, tick):
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(str(tick))
