"""Internet-scale scenario assembly."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.inet.scenarios import build_internet_scenario


@pytest.fixture(scope="module")
def scenario():
    return build_internet_scenario(
        n_as=200, n_legit_sources=500, n_legit_ases=50, n_bots=3_000,
        target_capacity=300.0, seed=11,
    )


class TestAssembly:
    def test_flow_counts(self, scenario):
        assert scenario.n_flows == 3_500
        assert int(scenario.flow_is_attack.sum()) == 3_000

    def test_flow_paths_end_at_target_link(self, scenario):
        for links in scenario.flow_links[:100]:
            assert links[-1] == 0  # link 0 is the target link

    def test_flow_paths_follow_parents(self, scenario):
        topo = scenario.topology
        for flow in range(0, scenario.n_flows, 500):
            links = scenario.flow_links[flow]
            assert links[0] == scenario.flow_origin_as[flow]
            for a, b in zip(links, links[1:]):
                if b != 0:
                    assert topo.parent[int(a)] == int(b)

    def test_target_capacity_applied(self, scenario):
        assert scenario.link_capacity[0] == 300.0

    def test_interior_links_provisioned_per_subscriber(self, scenario):
        # a leaf AS with hosts must have capacity >= headroom * hosts
        origins, counts = np.unique(
            scenario.flow_origin_as, return_counts=True
        )
        for asn, hosts in zip(origins[:20], counts[:20]):
            if asn == 0:
                continue
            assert scenario.link_capacity[asn] >= hosts  # headroom >= 1

    def test_categories_partition_flows(self, scenario):
        cats = scenario.categories()
        assert set(np.unique(cats)) <= {0, 1, 2}
        assert (cats == 2).sum() == 3_000

    def test_localized_overlap_places_legit_in_attack_ases(self, scenario):
        cats = scenario.categories()
        legit_in_attack = int((cats == 1).sum())
        assert legit_in_attack == pytest.approx(150, rel=0.25)

    def test_separated_has_little_overlap(self):
        sep = build_internet_scenario(
            n_as=200, n_legit_sources=500, n_legit_ases=50, n_bots=3_000,
            placement="separated", seed=11,
        )
        cats = sep.categories()
        # separated placement avoids attack ASes entirely
        assert (cats == 1).sum() == 0

    def test_dispersed_uses_more_attack_ases(self):
        loc = build_internet_scenario(n_as=400, placement="localized",
                                      n_bots=2000, n_legit_sources=400, seed=3)
        dis = build_internet_scenario(n_as=400, placement="dispersed",
                                      n_bots=2000, n_legit_sources=400, seed=3)
        assert len(dis.attack_ases) > len(loc.attack_ases)

    def test_invalid_placement(self):
        with pytest.raises(ConfigError):
            build_internet_scenario(placement="everywhere")

    def test_path_id_matches_topology(self, scenario):
        pid = scenario.path_id_of_flow(0)
        assert pid[0] == scenario.flow_origin_as[0]
        assert pid[-1] == 0
