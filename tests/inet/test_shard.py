"""Shard-parallel fluid simulation: bit-identity, barrier, GC, salvage."""

import os
import pickle
import threading

import numpy as np
import pytest

from repro.errors import ConfigError, ShardBarrierTimeout
from repro.inet.scenarios import build_internet_scenario
from repro.inet.shard import (
    BarrierExchange,
    ShardSpec,
    merge_shard_results,
    partition_scenario,
    shard_result,
)
from repro.inet.simulator import FluidSimulator

TICKS = 60
WARMUP = 30
SEED = 7


def _scenario():
    return build_internet_scenario(
        n_as=120, n_legit_sources=240, n_legit_ases=30, n_bots=2_000,
        target_capacity=150.0, seed=SEED,
    )


def _run_serial(strategy, s_max=None, record_series=False):
    sim = FluidSimulator(_scenario(), strategy=strategy, s_max=s_max, seed=SEED)
    return sim.run(ticks=TICKS, warmup=WARMUP, record_series=record_series)


def _run_sharded(strategy, n_shards, tmp_path, s_max=None,
                 record_series=False, epoch_ticks=20):
    """Run ``n_shards`` shard simulators lock-step in threads (a shard's
    tick cannot complete before its peers publish the same tick's
    rounds, so sequential stepping would deadlock) and merge."""
    scenario = _scenario()
    owners = partition_scenario(scenario, n_shards, SEED)
    exchange_dir = str(tmp_path / f"x-{strategy}-{s_max}")
    pieces = [None] * n_shards
    errors = []

    def drive(shard):
        try:
            spec = ShardSpec(shard=shard, n_shards=n_shards, shard_of_as=owners)
            sim = FluidSimulator(
                _scenario(), strategy=strategy, s_max=s_max, seed=SEED,
                shard=spec,
            )
            sim.attach_exchange(BarrierExchange(
                exchange_dir, spec, epoch_ticks=epoch_ticks,
                timeout_seconds=60.0,
            ))
            sim.begin_run(ticks=TICKS, warmup=WARMUP,
                          record_series=record_series)
            while sim.step_run():
                pass
            pieces[shard] = shard_result(sim, unit=strategy)
        except BaseException as exc:  # surfaced in the main thread
            errors.append(exc)

    threads = [
        threading.Thread(target=drive, args=(shard,), daemon=True)
        for shard in range(n_shards)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    if errors:
        raise errors[0]
    assert all(piece is not None for piece in pieces)
    return merge_shard_results(pieces)


class TestBitIdentity:
    @pytest.mark.parametrize("strategy,s_max", [
        ("nd", None), ("ff", None), ("floc", None), ("floc", 8),
    ])
    def test_two_shards_byte_identical_to_serial(
        self, tmp_path, strategy, s_max
    ):
        serial = _run_serial(strategy, s_max=s_max)
        merged = _run_sharded(strategy, 2, tmp_path, s_max=s_max)
        assert pickle.dumps(merged) == pickle.dumps(serial)

    def test_three_shards_byte_identical_to_serial(self, tmp_path):
        serial = _run_serial("floc")
        merged = _run_sharded("floc", 3, tmp_path)
        assert pickle.dumps(merged) == pickle.dumps(serial)

    def test_series_samples_are_canonical(self, tmp_path):
        serial = _run_serial("floc", record_series=True)
        merged = _run_sharded("floc", 2, tmp_path, record_series=True)
        assert merged.series == serial.series
        assert len(merged.series) == TICKS - WARMUP


class TestPartition:
    def test_every_as_owned_exactly_once(self):
        scenario = _scenario()
        owners = partition_scenario(scenario, 3, SEED)
        assert owners.shape[0] == scenario.topology.n_as
        masks = [owners == shard for shard in range(3)]
        assert np.all(sum(mask.astype(int) for mask in masks) == 1)

    def test_deterministic_per_seed(self):
        scenario = _scenario()
        a = partition_scenario(scenario, 4, 11)
        b = partition_scenario(scenario, 4, 11)
        c = partition_scenario(scenario, 4, 12)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)


class TestExchange:
    def _spec(self, shard=0, n_shards=2, n_as=8):
        owners = np.arange(n_as, dtype=np.int64) % n_shards
        return ShardSpec(shard=shard, n_shards=n_shards, shard_of_as=owners)

    def test_straggler_deadline_raises_retryable(self, tmp_path):
        ticking = iter(float(i) for i in range(1000))
        exchange = BarrierExchange(
            str(tmp_path), self._spec(), timeout_seconds=5.0,
            clock=lambda: next(ticking), sleep=_no_sleep,
        )
        with pytest.raises(ShardBarrierTimeout):
            exchange.allreduce(0, "load", {"own": np.zeros(8)}, {})

    def test_poll_hook_runs_while_waiting_and_never_pickles(self, tmp_path):
        calls = []
        ticking = iter(float(i) for i in range(1000))
        exchange = BarrierExchange(
            str(tmp_path), self._spec(), timeout_seconds=3.0,
            clock=lambda: next(ticking), sleep=_no_sleep,
        )
        exchange.poll_hook = _record_hook(calls)
        with pytest.raises(ShardBarrierTimeout):
            exchange.allreduce(0, "load", {"own": np.zeros(8)}, {})
        assert calls
        # pickling drops the hook (checkpoints must not carry live
        # supervisor objects); default clock/sleep pickle by reference
        plain = BarrierExchange(str(tmp_path), self._spec())
        plain.poll_hook = _record_hook(calls)
        revived = pickle.loads(pickle.dumps(plain))
        assert revived.poll_hook is None

    def test_assignment_reconstruction_is_exact(self, tmp_path):
        n_as = 8
        owners = np.arange(n_as, dtype=np.int64) % 2
        rng = np.random.default_rng(3)
        partials = [rng.random(n_as), rng.random(n_as)]
        fulls = []

        def drive(shard):
            spec = ShardSpec(shard=shard, n_shards=2, shard_of_as=owners)
            exchange = BarrierExchange(str(tmp_path), spec, timeout_seconds=30.0)
            vectors, counts = exchange.allreduce(
                0, "load", {"own": partials[shard]}, {"n": shard + 1}
            )
            fulls.append((vectors["own"], counts["n"]))

        threads = [
            threading.Thread(target=drive, args=(shard,)) for shard in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert len(fulls) == 2
        expected = np.where(owners == 0, partials[0], partials[1])
        for full, count in fulls:
            assert np.array_equal(full, expected)
            assert count == 3

    def test_idempotent_republish_keeps_first_bytes(self, tmp_path):
        spec = ShardSpec(
            shard=0, n_shards=1, shard_of_as=np.zeros(4, dtype=np.int64)
        )
        exchange = BarrierExchange(str(tmp_path), spec)
        first = np.arange(4, dtype=np.float64)
        exchange.allreduce(0, "load", {"own": first}, {})
        # a salvaged replay re-publishes; existing bytes must win
        path = exchange._path(0, "load", 0)
        before = open(path, "rb").read()
        exchange.allreduce(0, "load", {"own": first.copy()}, {})
        assert open(path, "rb").read() == before

    def test_gc_keeps_two_epochs(self, tmp_path):
        spec = ShardSpec(
            shard=0, n_shards=1, shard_of_as=np.zeros(4, dtype=np.int64)
        )
        exchange = BarrierExchange(str(tmp_path), spec, epoch_ticks=10)
        vec = np.zeros(4)
        for tick in range(0, 51):
            exchange.allreduce(tick, "load", {"own": vec}, {})
        kept = sorted(
            int(name[1:9]) for name in os.listdir(str(tmp_path))
            if name.endswith(".pkl")
        )
        # GC at tick 50 drops everything below 50 - 2*10 = 30
        assert min(kept) >= 30
        assert max(kept) == 50

    def test_bad_spec_rejected(self):
        with pytest.raises(ConfigError):
            ShardSpec(shard=2, n_shards=2, shard_of_as=np.zeros(4, dtype=np.int64))
        with pytest.raises(ConfigError):
            ShardSpec(
                shard=0, n_shards=2,
                shard_of_as=np.full(4, 7, dtype=np.int64),
            )


class TestMerge:
    def _pieces(self, tmp_path):
        serial = _run_serial("floc")
        scenario = _scenario()
        owners = partition_scenario(scenario, 2, SEED)
        merged = _run_sharded("floc", 2, tmp_path)
        return serial, merged, owners

    def test_incomplete_set_refused(self, tmp_path):
        scenario = _scenario()
        owners = partition_scenario(scenario, 2, SEED)
        spec = ShardSpec(shard=0, n_shards=2, shard_of_as=owners)
        sim = FluidSimulator(scenario, strategy="nd", seed=SEED, shard=spec)
        sim.begin_run(ticks=0, warmup=0)
        piece = shard_result(sim, unit="nd")
        with pytest.raises(ConfigError, match="missing shard"):
            merge_shard_results([piece])
        with pytest.raises(ConfigError, match="duplicate"):
            merge_shard_results([piece, piece])
        with pytest.raises(ConfigError):
            merge_shard_results([])


def _no_sleep(seconds):
    del seconds


def _record_hook(calls):
    def hook():
        calls.append("poll")
    return hook
