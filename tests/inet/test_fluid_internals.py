"""Fluid-simulator internals: admission strategies in isolation."""

import numpy as np
import pytest

from repro.inet.scenarios import build_internet_scenario
from repro.inet.simulator import FluidSimulator


@pytest.fixture(scope="module")
def sim():
    scenario = build_internet_scenario(
        n_as=150, n_legit_sources=300, n_legit_ases=40, n_bots=2_500,
        target_capacity=200.0, seed=19,
    )
    return FluidSimulator(scenario, strategy="floc", s_max=None, seed=2)


def arrivals_of(sim):
    rates = sim._send_rates()
    surv = sim._upstream_survival(rates)
    return rates * surv[sim.origin]


class TestAdmitNd:
    def test_under_capacity_passes_through(self, sim):
        arrivals = np.full(sim.n_flows, 200.0 / sim.n_flows / 2)
        admitted = sim._admit_nd(arrivals)
        assert np.allclose(admitted, arrivals)

    def test_over_capacity_scales_proportionally(self, sim):
        arrivals = np.full(sim.n_flows, 1.0)
        admitted = sim._admit_nd(arrivals)
        assert admitted.sum() == pytest.approx(200.0)
        assert np.allclose(admitted / arrivals, admitted[0] / arrivals[0])


class TestAdmitFf:
    def test_high_priority_pool_shared_fairly(self, sim):
        arrivals = arrivals_of(sim)
        admitted = sim._admit_ff(arrivals)
        cap = sim.scn.target_capacity
        assert admitted.sum() <= cap + 1e-6
        legit = ~sim.is_attack
        fair = cap / sim.n_flows
        # attack high-priority share per flow never exceeds min(a, fair)
        # scaled by the common pool factor
        hp_cap = np.minimum(arrivals[~legit], fair)
        assert np.all(admitted[~legit] <= hp_cap + 1e-9)

    def test_legit_flows_never_zeroed(self, sim):
        arrivals = arrivals_of(sim)
        admitted = sim._admit_ff(arrivals)
        legit = ~sim.is_attack
        sending = legit & (arrivals > 1e-9)
        assert np.all(admitted[sending] > 0)


class TestAdmitFloc:
    def test_group_allocations_sum_to_capacity(self, sim):
        sim._rebuild_groups()
        shares = sim._group_shares
        alloc = sim.scn.target_capacity * shares / shares.sum()
        assert alloc.sum() == pytest.approx(sim.scn.target_capacity)

    def test_flagging_targets_bots(self, sim):
        arrivals = arrivals_of(sim)
        # warm the rate EWMA so the flag test sees sustained rates
        for _ in range(30):
            sim._rate_ewma += 0.1 * (sim._send_rates() - sim._rate_ewma)
        sim._admit_floc(arrivals, tick=0)
        flagged = sim._flagged
        if flagged.any():
            attack_fraction = sim.is_attack[flagged].mean()
            assert attack_fraction > 0.9

    def test_conservation(self, sim):
        arrivals = arrivals_of(sim)
        admitted = sim._admit_floc(arrivals, tick=0)
        assert admitted.sum() <= sim.scn.target_capacity + 1e-6
        assert np.all(admitted >= -1e-12)
        assert np.all(admitted <= arrivals + 1e-9)


class TestUpstream:
    def test_tree_conservation(self, sim):
        """Admitted traffic into the root never exceeds the sum of what
        the leaf links admitted."""
        rates = sim._send_rates()
        surv = sim._upstream_survival(rates)
        arrival_total = (rates * surv[sim.origin]).sum()
        assert arrival_total <= rates.sum() + 1e-6

    def test_bot_heavy_subtrees_lose_more_upstream(self, sim):
        rates = sim._send_rates()
        surv = sim._upstream_survival(rates)
        attack_surv = surv[sim.origin][sim.is_attack].mean()
        legit_surv = surv[sim.origin][~sim.is_attack].mean()
        assert attack_surv <= legit_surv + 1e-9
