"""Topology-statistics experiment (FIG-11/12) details."""

import pytest

from repro.experiments.fig11 import run_fig11, topology_stats
from repro.inet.scenarios import build_internet_scenario

SMALL = dict(n_as=250, n_legit_sources=400, n_bots=4_000, n_legit_ases=50)


class TestTopologyStats:
    def test_red_links_cover_attack_paths(self):
        scenario = build_internet_scenario(seed=9, **SMALL)
        stats = topology_stats(scenario)
        # every attack AS contributes at least its own uplink
        assert stats.red_links >= stats.n_attack_ases

    def test_attack_depth_within_tree_bounds(self):
        scenario = build_internet_scenario(seed=9, **SMALL)
        stats = topology_stats(scenario)
        max_depth = max(scenario.topology.depth)
        assert 0 < stats.mean_attack_depth <= max_depth
        assert 0 < stats.mean_legit_depth <= max_depth

    def test_variants_give_different_structures(self):
        per_variant = run_fig11("localized", variants=("f-root", "jpn"),
                                **SMALL)
        a, b = per_variant
        assert a.depth_histogram != b.depth_histogram

    def test_dispersed_spreads_attack_ases(self):
        loc = run_fig11("localized", variants=("f-root",), **SMALL)[0]
        dis = run_fig11("dispersed", variants=("f-root",), **SMALL)[0]
        assert dis.n_attack_ases > loc.n_attack_ases
        # spreading the same bot population thins the per-AS counts,
        # which the concentration statistic reflects
        assert dis.n_bots == loc.n_bots

    def test_separated_has_zero_overlap_fraction(self):
        scenario = build_internet_scenario(
            placement="separated", seed=9, **SMALL
        )
        stats = topology_stats(scenario)
        assert stats.legit_in_attack_as_fraction == 0.0
