"""Fluid simulator: conservation, strategies, paper-shape outcomes."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.inet.scenarios import build_internet_scenario
from repro.inet.simulator import FluidSimulator


@pytest.fixture(scope="module")
def scenario():
    return build_internet_scenario(
        n_as=300, n_legit_sources=800, n_legit_ases=60, n_bots=8_000,
        target_capacity=400.0, seed=13,
    )


def run(scenario, strategy, s_max=None, ticks=250, warmup=120):
    sim = FluidSimulator(scenario, strategy=strategy, s_max=s_max, seed=3)
    return sim.run(ticks=ticks, warmup=warmup)


class TestMechanics:
    def test_unknown_strategy_rejected(self, scenario):
        with pytest.raises(ConfigError):
            FluidSimulator(scenario, strategy="magic")

    def test_shares_bounded(self, scenario):
        result = run(scenario, "nd")
        total = sum(result.shares.values())
        assert 0.0 <= total <= 1.0 + 1e-9
        assert result.utilization <= 1.0 + 1e-9

    def test_upstream_survival_within_unit_interval(self, scenario):
        sim = FluidSimulator(scenario, strategy="nd")
        rates = sim._send_rates()
        surv = sim._upstream_survival(rates)
        assert np.all(surv >= 0.0) and np.all(surv <= 1.0 + 1e-12)

    def test_admission_never_exceeds_arrivals(self, scenario):
        sim = FluidSimulator(scenario, strategy="floc")
        rates = sim._send_rates()
        surv = sim._upstream_survival(rates)
        arrivals = rates * surv[sim.origin]
        admitted = sim._admit_floc(arrivals, 0)
        assert np.all(admitted <= arrivals + 1e-9)
        assert admitted.sum() <= scenario.target_capacity + 1e-6

    def test_series_recording(self, scenario):
        sim = FluidSimulator(scenario, strategy="ff")
        result = sim.run(ticks=60, warmup=30, record_series=True)
        assert len(result.series) == 30


class TestPaperShapes:
    def test_nd_denies_legitimate_service(self, scenario):
        result = run(scenario, "nd")
        assert result.legit_total < 0.10

    def test_ff_partial_protection(self, scenario):
        nd = run(scenario, "nd")
        ff = run(scenario, "ff")
        assert ff.legit_total > 3 * max(nd.legit_total, 0.01)
        assert ff.shares["attack"] > 0.3  # attackers still dominate

    def test_floc_strong_protection(self, scenario):
        ff = run(scenario, "ff")
        floc = run(scenario, "floc")
        assert floc.legit_total > ff.legit_total
        assert floc.legit_total > 0.5

    def test_aggregation_favors_legitimate_paths(self, scenario):
        na = run(scenario, "floc", s_max=None)
        agg = run(scenario, "floc", s_max=40)
        assert agg.shares["legit_in_legit"] >= na.shares["legit_in_legit"] - 0.02
        assert agg.shares["legit_in_attack"] <= na.shares["legit_in_attack"] + 0.02

    def test_legit_flows_in_attack_ases_beat_bots_per_flow(self, scenario):
        result = run(scenario, "floc")
        assert (
            result.per_flow_mean["legit_in_attack"]
            > result.per_flow_mean["attack"]
        )

    def test_full_utilization_under_flood(self, scenario):
        for strategy in ("nd", "ff", "floc"):
            result = run(scenario, strategy)
            assert result.utilization > 0.9
