"""Skitter-like route-tree generation."""

import pytest

from repro.errors import ConfigError
from repro.inet.skitter import VARIANTS, generate_route_tree


class TestGeneration:
    def test_tree_rooted_at_zero(self):
        topo = generate_route_tree(n_as=100)
        assert topo.parent[0] == 0
        assert topo.depth[0] == 0

    def test_every_as_reaches_root(self):
        topo = generate_route_tree(n_as=200)
        for asn in range(200):
            path = topo.path_of(asn)
            assert path[0] == asn
            assert path[-1] == 0

    def test_paths_match_parents(self):
        topo = generate_route_tree(n_as=50)
        for asn in range(1, 50):
            path = topo.path_of(asn)
            assert path[1] == topo.parent[asn]

    def test_depth_capped(self):
        for variant, params in VARIANTS.items():
            topo = generate_route_tree(n_as=400, variant=variant)
            assert max(topo.depth) <= params["max_depth"] + 1

    def test_deterministic_per_variant(self):
        a = generate_route_tree(n_as=100, variant="f-root")
        b = generate_route_tree(n_as=100, variant="f-root")
        assert a.parent == b.parent

    def test_variants_differ(self):
        a = generate_route_tree(n_as=100, variant="f-root")
        b = generate_route_tree(n_as=100, variant="jpn")
        assert a.parent != b.parent

    def test_heavy_tailed_degrees(self):
        topo = generate_route_tree(n_as=500)
        children = topo.children_of()
        degrees = sorted((len(c) for c in children.values()), reverse=True)
        # preferential attachment: the biggest hub dwarfs the median
        assert degrees[0] >= 5 * max(1, degrees[len(degrees) // 2])

    def test_depth_histogram_counts_all(self):
        topo = generate_route_tree(n_as=300)
        assert sum(topo.depth_histogram().values()) == 300

    def test_invalid_inputs(self):
        with pytest.raises(ConfigError):
            generate_route_tree(n_as=1)
        with pytest.raises(ConfigError):
            generate_route_tree(n_as=10, variant="marsnet")
