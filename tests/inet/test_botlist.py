"""CBL-like bot placement and population-proportional host placement."""

import random

import pytest

from repro.errors import ConfigError
from repro.inet.botlist import (
    heavy_tailed_populations,
    place_bots,
    place_legitimate,
)


class TestBotPlacement:
    def test_total_bots_conserved(self):
        placement = place_bots(range(1, 500), 10_000, 50, random.Random(1))
        assert placement.total_bots == 10_000

    def test_requested_as_count(self):
        placement = place_bots(range(1, 500), 10_000, 50, random.Random(1))
        assert len(placement.attack_ases) == 50

    def test_cbl_like_concentration(self):
        # most bots sit in a small core of contaminated ASes
        placement = place_bots(range(1, 2000), 100_000, 300, random.Random(2))
        assert placement.concentration(top_fraction=0.10) > 0.90

    def test_every_attack_as_contaminated_key_exists(self):
        placement = place_bots(range(1, 100), 1000, 10, random.Random(3))
        assert set(placement.bots_per_as) == set(placement.attack_ases)

    def test_too_many_attack_ases_rejected(self):
        with pytest.raises(ConfigError):
            place_bots(range(1, 10), 100, 50, random.Random(1))

    def test_zero_attack_ases_rejected(self):
        with pytest.raises(ConfigError):
            place_bots(range(1, 10), 100, 0, random.Random(1))

    def test_single_attack_as_gets_everything(self):
        placement = place_bots(range(1, 100), 500, 1, random.Random(4))
        assert placement.total_bots == 500
        assert len(placement.bots_per_as) == 1


class TestLegitimatePlacement:
    def test_total_sources_conserved(self):
        per_as = place_legitimate(range(1, 500), 5_000, 100, random.Random(5))
        assert sum(per_as.values()) == 5_000

    def test_overlap_places_sources_in_attack_ases(self):
        attack = list(range(400, 450))
        per_as = place_legitimate(
            range(1, 500), 1_000, 100, random.Random(6),
            attack_ases=attack, overlap_fraction=0.30,
        )
        in_attack = sum(per_as.get(a, 0) for a in attack)
        # at least the intentional 30 % lands there; population-
        # proportional sampling may add accidental residents on top
        assert in_attack >= 280
        assert in_attack <= 600

    def test_no_overlap_without_attack_ases(self):
        per_as = place_legitimate(
            range(1, 500), 1_000, 100, random.Random(7),
            attack_ases=[], overlap_fraction=0.30,
        )
        assert sum(per_as.values()) == 1_000

    def test_heavy_tailed_distribution(self):
        per_as = place_legitimate(range(1, 500), 10_000, 100, random.Random(8))
        counts = sorted(per_as.values(), reverse=True)
        # heavy tail: the top AS dominates the median AS
        assert counts[0] > 5 * counts[len(counts) // 2]

    def test_too_many_legit_ases_rejected(self):
        with pytest.raises(ConfigError):
            place_legitimate(range(1, 10), 100, 50, random.Random(1))


class TestPopulations:
    def test_zipf_weights_positive_and_normalizable(self):
        pops = heavy_tailed_populations(100, random.Random(9))
        assert len(pops) == 100
        assert all(p > 0 for p in pops)
        assert max(pops) / min(pops) > 50  # heavy tail
