"""Seed robustness: the headline invariants hold across random seeds.

One seed proving a claim could be luck; three seeds with the same
orderings is the cheap version of a confidence interval.
"""

import pytest

from repro.experiments.common import FunctionalSettings, run_breakdown
from repro.traffic.scenarios import build_tree_scenario

SEEDS = (5, 23, 71)
SETTINGS = FunctionalSettings(scale=0.08, warmup_seconds=3.0,
                              measure_seconds=6.0)


def run(scheme, seed):
    scenario = build_tree_scenario(
        scale_factor=SETTINGS.scale,
        attack_kind="cbr",
        attack_rate_mbps=2.0,
        seed=seed,
        start_spread_seconds=1.0,
    )
    return run_breakdown(scenario, scheme, SETTINGS)


@pytest.mark.parametrize("seed", SEEDS)
class TestAcrossSeeds:
    def test_floc_legit_majority(self, seed):
        result = run("floc", seed)
        assert result.breakdown.legit_total > 0.7, seed

    def test_floc_beats_droptail(self, seed):
        floc = run("floc", seed)
        droptail = run("droptail", seed)
        assert (
            floc.breakdown.legit_total
            > droptail.breakdown.legit_total + 0.2
        ), seed

    def test_victims_beat_bots_per_flow(self, seed):
        result = run("floc", seed)
        mean = lambda xs: sum(xs) / len(xs) if xs else 0.0
        assert mean(result.legit_in_attack_rates) > mean(
            result.attack_rates
        ), seed


class TestDeterminism:
    def test_same_seed_same_numbers(self):
        a = run("floc", 5)
        b = run("floc", 5)
        assert a.breakdown.shares == b.breakdown.shares
        assert a.legit_in_legit_rates == b.legit_in_legit_rates

    def test_different_seeds_differ(self):
        a = run("floc", 5)
        b = run("floc", 23)
        assert a.breakdown.shares != b.breakdown.shares
