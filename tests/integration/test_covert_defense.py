"""Covert-attack defense end to end (paper Section VI-D, scaled)."""

import pytest

from repro.core.config import FLocConfig
from repro.experiments.common import FunctionalSettings, run_breakdown
from repro.traffic.scenarios import build_tree_scenario

SETTINGS = FunctionalSettings(scale=0.08, warmup_seconds=3.0,
                              measure_seconds=7.0, seed=4)


def covert_scenario(fanout):
    return build_tree_scenario(
        scale_factor=SETTINGS.scale,
        attack_kind="covert",
        attack_rate_mbps=0.6,  # per-flow: individually unremarkable
        covert_fanout=fanout,
        n_servers=max(1, fanout),
        seed=4,
        start_spread_seconds=1.0,
    )


class TestCovertDefense:
    def test_floc_caps_covert_source_bandwidth(self):
        """With n_max=2 a bot's flows collapse into two accounting units,
        so the attacker's bandwidth is capped near (bots * n_max) fair
        unit shares no matter how many flows it spreads across — the
        paper's 28.8 % cap, scaled to this scenario."""
        results = {}
        for fanout in (2, 8):
            results[fanout] = run_breakdown(
                covert_scenario(fanout), "floc", SETTINGS,
                floc_config=FLocConfig(n_max=2),
            )
        run8 = results[8]
        # n_max cap: bots * n_max fair unit shares of the link
        n_bots = 30  # 6 attack leaves * 5 bots at scale 0.08
        n_legit = len(run8.legit_in_legit_rates) + len(
            run8.legit_in_attack_rates
        )
        n_units = n_legit + n_bots * 2
        cap = n_bots * 2 / n_units
        for fanout, run in results.items():
            assert run.breakdown.attack < cap + 0.05, fanout
            assert run.breakdown.legit_total > 0.6, fanout

    def test_floc_beats_redpd_under_covert_attack(self):
        floc = run_breakdown(
            covert_scenario(8), "floc", SETTINGS,
            floc_config=FLocConfig(n_max=2),
        )
        redpd = run_breakdown(covert_scenario(8), "redpd", SETTINGS)
        assert floc.breakdown.legit_total > redpd.breakdown.legit_total

    def test_per_flow_fairness_loses_to_fanout(self):
        """RED-PD (per-flow fairness) hands bandwidth proportional to flow
        count: more covert flows -> more attack share."""
        low = run_breakdown(covert_scenario(2), "redpd", SETTINGS)
        high = run_breakdown(covert_scenario(10), "redpd", SETTINGS)
        assert high.breakdown.attack > low.breakdown.attack

    def test_account_units_bounded_by_n_max(self):
        run = run_breakdown(
            covert_scenario(8), "floc", SETTINGS,
            floc_config=FLocConfig(n_max=2),
        )
        policy = run.extra["policy"]
        # accounting units on attack paths: at most n_max per bot host
        by_host = {}
        for state in policy.paths.values():
            for key in state.flows:
                src = key[0]
                if str(src).startswith("b_"):
                    by_host.setdefault(src, set()).add(key)
        assert by_host
        assert all(len(units) <= 2 for units in by_host.values())
