"""End-to-end scheme comparisons on the Section VI tree (scaled down).

These are the load-bearing integration checks: the relative orderings the
paper's figures report must hold on every run.
"""

import pytest

from repro.core.config import FLocConfig
from repro.experiments.common import FunctionalSettings, run_breakdown
from repro.traffic.scenarios import build_tree_scenario

SETTINGS = FunctionalSettings(scale=0.08, warmup_seconds=3.0,
                              measure_seconds=7.0, seed=2)


def cbr_scenario(rate=2.0, seed=2):
    return build_tree_scenario(
        scale_factor=SETTINGS.scale,
        attack_kind="cbr",
        attack_rate_mbps=rate,
        seed=seed,
        start_spread_seconds=1.0,
    )


@pytest.fixture(scope="module")
def results():
    out = {}
    for scheme in ("floc", "pushback", "redpd", "droptail", "fairshare"):
        out[scheme] = run_breakdown(cbr_scenario(), scheme, SETTINGS)
    return out


class TestSchemeOrdering:
    def test_no_defense_hands_link_to_attackers(self, results):
        # at 2.0 Mbps/bot (1.5x capacity offered) attackers take about
        # their arrival share...
        assert results["droptail"].breakdown.attack > 0.45
        # ...and at 4.0 Mbps/bot (3x capacity) they dominate outright
        heavy = run_breakdown(cbr_scenario(rate=4.0), "droptail", SETTINGS)
        assert heavy.breakdown.attack > 0.6

    def test_floc_protects_legitimate_traffic_best(self, results):
        floc = results["floc"].breakdown.legit_total
        for other in ("pushback", "redpd", "droptail", "fairshare"):
            assert floc >= results[other].breakdown.legit_total - 0.02

    def test_floc_legit_majority(self, results):
        assert results["floc"].breakdown.legit_total > 0.7

    def test_pushback_collateral_damage(self, results):
        # Pushback rate-limits whole aggregates: legitimate flows inside
        # attack paths starve relative to FLoc's
        assert (
            results["pushback"].breakdown.legit_in_attack
            < 0.5 * results["floc"].breakdown.legit_in_attack
        )

    def test_all_schemes_use_the_link(self, results):
        for scheme, result in results.items():
            assert result.breakdown.utilization > 0.8, scheme


class TestFLocDetails:
    def test_attack_rate_insensitivity(self):
        """Fig. 7's headline: FLoc's legitimate-path guarantee holds at
        every attack strength (faster bots only *add* spare bandwidth —
        their crushed allocations are absorbed by legitimate flows)."""
        shares = []
        for rate in (1.0, 4.0):
            run = run_breakdown(cbr_scenario(rate), "floc", SETTINGS)
            shares.append(run.breakdown.legit_in_legit)
        for share in shares:
            assert share > 0.6  # never below the guarantee level
        assert shares[1] >= shares[0] - 0.05  # stronger attack never hurts

    def test_aggregation_bounds_identifiers(self):
        run = run_breakdown(
            cbr_scenario(), "floc", SETTINGS, floc_config=FLocConfig(s_max=25)
        )
        assert run.extra["policy"].plan.n_groups <= 25

    def test_shrew_attack_handled(self):
        scenario = build_tree_scenario(
            scale_factor=SETTINGS.scale, attack_kind="shrew",
            attack_rate_mbps=2.0, seed=2, start_spread_seconds=1.0,
        )
        run = run_breakdown(scenario, "floc", SETTINGS)
        assert run.breakdown.legit_total > 0.6

    def test_high_population_tcp_attack_confined(self):
        scenario = build_tree_scenario(
            scale_factor=SETTINGS.scale, attack_kind="tcp", seed=2,
            start_spread_seconds=1.0,
        )
        run = run_breakdown(scenario, "floc", SETTINGS)
        # adaptive attackers cannot steal legitimate paths' bandwidth:
        # 21 of 27 path allocations belong to legitimate domains
        assert run.breakdown.legit_in_legit > 0.55
