"""Failure injection and lifecycle edge cases for the FLoc router."""

import pytest

from repro.core.config import FLocConfig
from repro.core.router import FLocPolicy
from repro.net.engine import Engine
from repro.net.packet import DATA, SYN, Packet
from repro.net.topology import Topology
from repro.tcp.source import TcpSource
from repro.traffic.cbr import CbrSource
from repro.traffic.scenarios import build_tree_scenario


def small_engine(capacity=5.0):
    topo = Topology()
    for host in ("a", "b", "bot"):
        topo.add_duplex_link(host, "r0", capacity=None)
    topo.add_duplex_link("r0", "srv", capacity=capacity, buffer=60)
    policy = FLocPolicy(FLocConfig())
    topo.set_policy("r0", "srv", policy)
    return Engine(topo, seed=21), policy


class TestLifecycle:
    def test_departed_paths_forgotten(self):
        engine, policy = small_engine()
        flow = engine.open_flow("a", "srv", path_id=(1, 9))
        src = TcpSource(flow, total_packets=30)
        engine.add_source(src)
        engine.run(200)
        assert (1, 9) in policy.paths
        # flow finished; after the active window the path state expires
        engine.run(policy.cfg.flow_active_window + 3 * policy.cfg.measure_interval)
        assert (1, 9) not in policy.paths

    def test_new_path_arrives_mid_run(self):
        engine, policy = small_engine()
        f1 = engine.open_flow("a", "srv", path_id=(1, 9))
        engine.add_source(TcpSource(f1))
        # the second path appears mid-run: sources must be registered
        # before the engine starts, so it is declared with a delayed start
        f2 = engine.open_flow("b", "srv", path_id=(2, 9))
        engine.add_source(TcpSource(f2, start_tick=300))
        engine.run(600)
        assert (2, 9) in policy.paths
        # both paths are mapped into live bandwidth groups (possibly the
        # same one, if legitimate aggregation merged them)
        for pid in ((1, 9), (2, 9)):
            group = policy._group_state(pid, engine.tick)
            assert group.bucket is not None
            assert group.bandwidth > 0

    def test_blocked_flow_recovers_after_block_expires(self):
        engine, policy = small_engine(capacity=3.0)
        legit = engine.open_flow("a", "srv", path_id=(1, 9))
        engine.add_source(TcpSource(legit))
        bot_flow = engine.open_flow("bot", "srv", path_id=(1, 9),
                                    is_attack=True)
        bot = CbrSource(bot_flow, rate=30.0, stop_tick=1500)  # extreme rate
        engine.add_source(bot)
        engine.run(1500)
        # the extreme flow gets blocked outright at some point
        assert policy.drop_stats["blocked"] > 0 or policy.drop_stats[
            "preferential"
        ] > 0
        blocked_before = dict(policy._blocked)
        # after the attack stops and blocks expire, the table drains
        engine.run(policy.cfg.block_ticks + 10 * policy.cfg.measure_interval)
        for key, until in policy._blocked.items():
            assert until > 1500  # no stale entries pinned forever

    def test_capability_checks_can_be_disabled(self):
        engine, policy = small_engine()
        policy.cfg.capability_checks = False
        flow = engine.open_flow("a", "srv", path_id=(1, 9))
        # inject data with no capability at all
        engine._start()
        pkt = Packet(flow.flow_id, DATA, 0, flow.path_id, flow.route,
                     "a", "srv", 0, capability=None)
        assert policy.admit(pkt, 0)

    def test_syn_flood_does_not_crash_state(self):
        engine, policy = small_engine()
        flow = engine.open_flow("bot", "srv", path_id=(3, 9), is_attack=True)
        engine._start()
        for i in range(2000):
            syn = Packet(flow.flow_id, SYN, 0, flow.path_id, flow.route,
                         f"spoof{i}", "srv", 0)
            policy.admit(syn, i % 50)
            policy.on_tick(i % 50)
        # SYN state is bounded per flow id, not per spoofed address
        state = policy.paths[(3, 9)]
        assert len(state.syn_ticks) <= 1


class TestScenarioEdgeCases:
    def test_single_path_scenario(self):
        scenario = build_tree_scenario(
            degree=1, height=1, legit_per_leaf=3, attack_leaves=0,
            bots_per_attack_leaf=0, scale_factor=1.0, attack_kind="none",
            link_mbps=10.0, seed=4, start_spread_seconds=0.5,
        )
        scenario.attach_policy(FLocPolicy(FLocConfig()))
        monitor = scenario.add_target_monitor()
        scenario.run_seconds(4.0)
        assert monitor.total_serviced > 0

    def test_all_paths_attacked(self):
        scenario = build_tree_scenario(
            scale_factor=0.05, attack_leaves=27, attack_kind="cbr",
            seed=4, start_spread_seconds=0.5,
        )
        scenario.attach_policy(FLocPolicy(FLocConfig()))
        monitor = scenario.add_target_monitor(start_seconds=2.0)
        scenario.run_seconds(6.0)
        # even with every domain contaminated, legitimate flows are not
        # denied service (preferential drops act on flows, not domains)
        legit = sum(
            monitor.service_counts.get(f.flow_id, 0)
            for f in scenario.legit_flows
        )
        assert legit > 0
        assert len(scenario.legit_path_ids) == 0

    def test_zero_attack_rate_bots_are_harmless(self):
        scenario = build_tree_scenario(
            scale_factor=0.05, attack_kind="cbr", attack_rate_mbps=0.01,
            seed=4, start_spread_seconds=0.5,
        )
        scenario.attach_policy(FLocPolicy(FLocConfig()))
        monitor = scenario.add_target_monitor(start_seconds=2.0)
        scenario.run_seconds(6.0)
        policy = scenario.topology.link(*scenario.target).policy
        # near-idle bots are essentially never blocked (a couple of noisy
        # drops during transients are tolerable; sustained blocking is not)
        total_drops = max(1, sum(policy.drop_stats.values()))
        assert policy.drop_stats["blocked"] / total_drops < 0.02
