"""Input validation: clear errors instead of silent misbehaviour."""

import pytest

from repro.errors import SimulationError, TopologyError
from repro.net.engine import Engine
from repro.net.topology import Topology
from repro.tcp.source import TcpSource


def engine_with_link():
    topo = Topology()
    topo.add_duplex_link("a", "r", capacity=None)
    topo.add_duplex_link("r", "srv", capacity=2.0, buffer=10)
    return Engine(topo, seed=1), topo


class TestEngineValidation:
    def test_negative_run_rejected(self):
        engine, _ = engine_with_link()
        with pytest.raises(SimulationError, match="negative"):
            engine.run(-1)

    def test_zero_run_is_a_no_op(self):
        engine, _ = engine_with_link()
        engine.run(0)
        assert engine.tick == 0

    def test_open_flow_rejects_single_node_route(self):
        engine, _ = engine_with_link()
        with pytest.raises(SimulationError, match="route"):
            engine.open_flow("a", "srv", path_id=(1,), route=["a"])

    def test_open_flow_rejects_empty_route(self):
        engine, _ = engine_with_link()
        with pytest.raises(SimulationError, match="route"):
            engine.open_flow("a", "srv", path_id=(1,), route=[])

    def test_open_flow_rejects_degenerate_endpoints(self):
        engine, _ = engine_with_link()
        with pytest.raises(SimulationError, match="route"):
            engine.open_flow("a", "a", path_id=(1,))

    def test_add_source_after_start_rejected(self):
        engine, _ = engine_with_link()
        flow = engine.open_flow("a", "srv", path_id=(1,))
        engine.add_source(TcpSource(flow))
        engine.run(5)
        late = engine.open_flow("a", "srv", path_id=(2,))
        with pytest.raises(SimulationError, match="started"):
            engine.add_source(TcpSource(late))


class TestTopologyValidation:
    def test_zero_capacity_rejected(self):
        with pytest.raises(TopologyError, match="capacity"):
            Topology().add_link("a", "b", capacity=0.0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(TopologyError, match="capacity"):
            Topology().add_link("a", "b", capacity=-3.0)

    def test_unbounded_capacity_allowed(self):
        topo = Topology()
        topo.add_link("a", "b", capacity=None)
        assert topo.link("a", "b").capacity is None

    def test_zero_buffer_rejected(self):
        with pytest.raises(TopologyError, match="buffer"):
            Topology().add_link("a", "b", capacity=1.0, buffer=0)

    def test_routing_skips_down_links(self):
        topo = Topology()
        topo.add_duplex_link("a", "m1", capacity=None)
        topo.add_duplex_link("m1", "z", capacity=None)
        topo.add_duplex_link("a", "m2", capacity=None)
        topo.add_duplex_link("m2", "z", capacity=None)
        topo.link("a", "m1").up = False
        route = topo.shortest_route("a", "z")
        assert route == ["a", "m2", "z"]

    def test_no_route_when_only_path_is_down(self):
        topo = Topology()
        topo.add_duplex_link("a", "b", capacity=None)
        topo.link("a", "b").up = False
        with pytest.raises(TopologyError):
            topo.shortest_route("a", "b")

    def test_validate_route_rejects_down_hop(self):
        topo = Topology()
        topo.add_duplex_link("a", "b", capacity=None)
        topo.link("a", "b").up = False
        with pytest.raises(TopologyError, match="down"):
            topo.validate_route(["a", "b"])
