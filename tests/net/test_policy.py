"""Reference link policies: drop-tail and random-drop."""

import pytest

from repro.net.engine import Engine
from repro.net.packet import DATA, Packet
from repro.net.policy import DropTailPolicy, RandomDropPolicy
from repro.net.topology import Topology


def build(policy, buffer=5, capacity=1.0):
    topo = Topology()
    topo.add_duplex_link("a", "b", capacity=capacity, buffer=buffer)
    topo.set_policy("a", "b", policy)
    engine = Engine(topo, seed=3)
    flow = engine.open_flow("a", "b", path_id=(1,))
    return engine, topo.link("a", "b"), flow


def packets(flow, n):
    return [
        Packet(flow.flow_id, DATA, seq, flow.path_id, flow.route, "a", "b", 0)
        for seq in range(n)
    ]


class TestDropTail:
    def test_admits_until_buffer_full(self):
        policy = DropTailPolicy()
        engine, link, flow = build(policy)
        policy.attach(link, engine)
        decisions = []
        for pkt in packets(flow, 8):
            admitted = policy.admit(pkt, 0)
            decisions.append(admitted)
            if admitted:
                link.queue.append(pkt)
        assert decisions == [True] * 5 + [False] * 3

    def test_unbounded_buffer_always_admits(self):
        policy = DropTailPolicy()
        engine, link, flow = build(policy, buffer=None)
        policy.attach(link, engine)
        assert all(policy.admit(p, 0) for p in packets(flow, 1000))


class TestRandomDrop:
    def test_batch_keeps_all_when_room(self):
        policy = RandomDropPolicy()
        engine, link, flow = build(policy, buffer=100)
        policy.attach(link, engine)
        arrivals = packets(flow, 10)
        assert policy.batch_admit(arrivals, 0) == arrivals

    def test_batch_samples_when_overflowing(self):
        policy = RandomDropPolicy()
        engine, link, flow = build(policy, buffer=4)
        policy.attach(link, engine)
        arrivals = packets(flow, 20)
        admitted = policy.batch_admit(arrivals, 0)
        assert len(admitted) == 4
        assert set(map(id, admitted)) <= set(map(id, arrivals))

    def test_batch_empty_when_queue_full(self):
        policy = RandomDropPolicy()
        engine, link, flow = build(policy, buffer=2)
        policy.attach(link, engine)
        link.queue.extend(packets(flow, 2))
        assert policy.batch_admit(packets(flow, 5), 0) == []

    def test_victims_are_random_not_tail(self):
        policy = RandomDropPolicy()
        engine, link, flow = build(policy, buffer=10)
        policy.attach(link, engine)
        arrivals = packets(flow, 40)
        admitted = policy.batch_admit(arrivals, 0)
        seqs = sorted(p.seq for p in admitted)
        # with random selection the survivors are (almost surely) not
        # exactly the first ten arrivals
        assert seqs != list(range(10))

    def test_unbounded_buffer_passes_everything(self):
        policy = RandomDropPolicy()
        engine, link, flow = build(policy, buffer=None)
        policy.attach(link, engine)
        arrivals = packets(flow, 50)
        assert policy.batch_admit(arrivals, 0) == arrivals
