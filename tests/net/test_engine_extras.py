"""Engine extras: hooks, time helpers, interleaving, series recording."""

import pytest

from repro.net.engine import Engine, LinkMonitor
from repro.net.packet import DATA, Packet
from repro.net.topology import Topology
from repro.tcp.source import TcpSource
from repro.units import UnitScale
from tests.net.test_engine import OneShotSource, chain_engine


class TestHooks:
    def test_tick_hook_called_every_tick(self):
        engine, flow = chain_engine(1)
        seen = []
        engine.add_tick_hook(lambda eng, tick: seen.append(tick))
        engine.run(5)
        assert seen == [0, 1, 2, 3, 4]

    def test_run_seconds_uses_scale(self):
        topo = Topology()
        topo.add_duplex_link("a", "b")
        engine = Engine(topo, scale=UnitScale(tick_seconds=0.5), seed=1)
        engine.run_seconds(3.0)
        assert engine.tick == 6

    def test_policy_ticks_when_link_idle(self):
        from repro.net.policy import LinkPolicy

        class CountingPolicy(LinkPolicy):
            def __init__(self):
                self.ticks = 0

            def on_tick(self, tick):
                self.ticks += 1

        topo = Topology()
        topo.add_duplex_link("a", "b", capacity=1.0, buffer=5)
        policy = CountingPolicy()
        topo.set_policy("a", "b", policy)
        engine = Engine(topo, seed=1)
        engine.run(40)  # no traffic at all
        assert policy.ticks == 40


class TestInterleave:
    def _packets(self, engine, flows, counts):
        out = []
        for flow, count in zip(flows, counts):
            for seq in range(count):
                out.append(
                    Packet(flow.flow_id, DATA, seq, flow.path_id,
                           flow.route, flow.src_host, flow.dst_host, 0)
                )
        return out

    def test_per_flow_order_preserved(self):
        engine, flow = chain_engine(1)
        flow2 = engine.open_flow("host", "srv", path_id=(2,))
        engine._start()
        arrivals = self._packets(engine, [flow, flow2], [20, 20])
        mixed = engine._interleave(arrivals)
        assert len(mixed) == 40
        for f in (flow, flow2):
            seqs = [p.seq for p in mixed if p.flow_id == f.flow_id]
            assert seqs == sorted(seqs)

    def test_flows_actually_mix(self):
        engine, flow = chain_engine(1)
        flow2 = engine.open_flow("host", "srv", path_id=(2,))
        engine._start()
        arrivals = self._packets(engine, [flow, flow2], [30, 30])
        mixed = engine._interleave(arrivals)
        # the first 30 positions are (almost surely) not all flow 1
        first_half_ids = {p.flow_id for p in mixed[:30]}
        assert len(first_half_ids) == 2

    def test_single_flow_returned_as_is(self):
        engine, flow = chain_engine(1)
        engine._start()
        arrivals = self._packets(engine, [flow], [10])
        assert engine._interleave(arrivals) == arrivals


class TestMonitorSeries:
    def test_series_recorded_per_tick(self):
        engine, flow = chain_engine(1, capacity=2.0, buffer=50)
        src = OneShotSource(flow, count=6)
        engine.add_source(src)
        monitor = LinkMonitor(record_series=True)
        engine.add_monitor("host", "r1", monitor)
        engine.run(10)
        total = sum(count for _, count in monitor.series)
        # the final partial tick stays in the accumulator; everything
        # recorded is bounded by capacity per tick
        assert all(count <= 2 for _, count in monitor.series)
        assert total + monitor._tick_serviced == 6

    def test_drop_counts_recorded(self):
        engine, flow = chain_engine(1, capacity=1.0, buffer=2)
        src = OneShotSource(flow, count=10)
        engine.add_source(src)
        monitor = engine.add_monitor("host", "r1")
        engine.run(10)
        assert monitor.total_dropped == 8
        assert monitor.drop_counts[flow.flow_id] == 8


class TestTwoBottlenecks:
    def test_policies_on_two_links_coexist(self):
        """Packets crossing two policed links are charged at both."""
        from repro.baselines.red import RedPolicy

        topo = Topology()
        topo.add_duplex_link("h", "r1", capacity=None)
        topo.add_duplex_link("r1", "r2", capacity=3.0, buffer=30)
        topo.add_duplex_link("r2", "srv", capacity=2.0, buffer=30)
        topo.set_policy("r1", "r2", RedPolicy())
        topo.set_policy("r2", "srv", RedPolicy())
        engine = Engine(topo, seed=5)
        flow = engine.open_flow("h", "srv", path_id=(1,))
        engine.add_source(TcpSource(flow))
        monitor = engine.add_monitor("r2", "srv")
        engine.run(1500)
        rate = monitor.total_serviced / 1500.0
        # throughput is set by the narrower second bottleneck
        assert rate == pytest.approx(2.0, rel=0.2)
