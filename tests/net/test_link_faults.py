"""Engine link-failure primitives and LinkMonitor series finalisation."""

import pytest

from repro.errors import TopologyError
from repro.net.engine import Engine, LinkMonitor
from repro.net.topology import Topology
from repro.tcp.source import TcpSource
from repro.traffic.cbr import CbrSource


def line_engine(seed=3):
    topo = Topology()
    topo.add_duplex_link("h", "r", capacity=None)
    topo.add_duplex_link("r", "srv", capacity=3.0, buffer=20)
    return Engine(topo, seed=seed), topo


class TestFailRestore:
    def test_fail_link_loses_queue_and_blocks_arrivals(self):
        engine, topo = line_engine()
        flow = engine.open_flow("h", "srv", path_id=(1,))
        engine.add_source(CbrSource(flow, rate=6.0))
        engine.run(30)
        link = topo.link("r", "srv")
        assert len(link.queue) > 0
        dropped_before = link.dropped_total
        engine.fail_link("r", "srv")
        assert not link.up and len(link.queue) == 0
        assert link.dropped_total > dropped_before
        served_down = link.serviced_total
        engine.run(20)
        assert link.serviced_total == served_down  # nothing passes

    def test_dead_drops_bypass_policy_notification(self):
        engine, topo = line_engine()

        from repro.net.policy import LinkPolicy

        class CountingPolicy(LinkPolicy):
            drops = 0

            def on_drop(self, pkt, tick):
                CountingPolicy.drops += 1

        topo.set_policy("r", "srv", CountingPolicy())
        flow = engine.open_flow("h", "srv", path_id=(1,))
        engine.add_source(CbrSource(flow, rate=2.0))
        engine.run(10)
        engine.fail_link("r", "srv")
        before = CountingPolicy.drops
        engine.run(20)
        # outage losses are not congestion drops: the policy never hears
        # about them (its MTD analogues must not be polluted)
        assert CountingPolicy.drops == before
        assert topo.link("r", "srv").dropped_total > 0

    def test_restore_link_resumes_service(self):
        engine, topo = line_engine()
        flow = engine.open_flow("h", "srv", path_id=(1,))
        engine.add_source(TcpSource(flow))
        engine.run(20)
        engine.fail_link("r", "srv")
        engine.run(20)
        served = topo.link("r", "srv").serviced_total
        engine.restore_link("r", "srv")
        assert topo.link("r", "srv").up
        engine.run(60)
        assert topo.link("r", "srv").serviced_total > served


class TestRerouteFlow:
    def test_default_reroute_avoids_down_link(self):
        topo = Topology()
        topo.add_duplex_link("h", "a", capacity=None)
        topo.add_duplex_link("h", "b", capacity=None)
        topo.add_duplex_link("a", "srv", capacity=None)
        topo.add_duplex_link("b", "srv", capacity=None)
        engine = Engine(topo, seed=2)
        flow = engine.open_flow("h", "srv", path_id=(1,))
        first_mid = flow.route[1]
        other_mid = "b" if first_mid == "a" else "a"
        engine.fail_link("h", first_mid)
        engine.fail_link(first_mid, "h")
        engine.reroute_flow(flow)
        assert flow.route == ("h", other_mid, "srv")
        assert flow.reverse_route == ("srv", other_mid, "h")

    def test_explicit_route_is_validated(self):
        engine, topo = line_engine()
        flow = engine.open_flow("h", "srv", path_id=(1,))
        with pytest.raises(TopologyError):
            engine.reroute_flow(flow, route=["h", "nowhere", "srv"])

    def test_path_id_survives_reroute(self):
        engine, topo = line_engine()
        flow = engine.open_flow("h", "srv", path_id=(7, 9))
        engine.reroute_flow(flow)
        assert flow.path_id == (7, 9)


class TestMonitorFlush:
    def test_final_tick_of_series_is_recorded(self):
        engine, topo = line_engine()
        flow = engine.open_flow("h", "srv", path_id=(1,))
        engine.add_source(CbrSource(flow, rate=2.0))
        monitor = engine.add_monitor("r", "srv", LinkMonitor(record_series=True))
        engine.run(50)
        last_serviced_tick = max(t for t, _ in monitor.series)
        # the link serviced packets right up to the end of the run; the
        # final measurement tick must not be silently dropped
        assert last_serviced_tick >= 49 - 3  # emission + 2 hops of latency
        assert sum(n for _, n in monitor.series) == monitor.total_serviced

    def test_flush_is_idempotent(self):
        engine, topo = line_engine()
        flow = engine.open_flow("h", "srv", path_id=(1,))
        engine.add_source(CbrSource(flow, rate=2.0))
        monitor = engine.add_monitor("r", "srv", LinkMonitor(record_series=True))
        engine.run(30)
        snapshot = list(monitor.series)
        monitor.flush()
        monitor.flush()
        assert monitor.series == snapshot

    def test_series_consistent_across_segmented_runs(self):
        def totals(segments):
            engine, topo = line_engine()
            flow = engine.open_flow("h", "srv", path_id=(1,))
            engine.add_source(CbrSource(flow, rate=2.0))
            monitor = engine.add_monitor(
                "r", "srv", LinkMonitor(record_series=True)
            )
            for seg in segments:
                engine.run(seg)
            return monitor.series

        assert totals([60]) == totals([20, 20, 20])
