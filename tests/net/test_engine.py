"""Engine semantics: per-hop timing, capacity, buffering, delivery, ACKs."""

import pytest

from repro.net.engine import Engine, LinkMonitor
from repro.net.packet import ACK, DATA, SYN, SYNACK, Packet
from repro.net.source import TrafficSource
from repro.net.topology import Topology


class OneShotSource(TrafficSource):
    """Emits a fixed number of data packets at tick 0, records ACKs."""

    def __init__(self, flow, count=1, kind=DATA):
        self.flow = flow
        self.count = count
        self.kind = kind
        self.acks = []
        self.synacks = []
        self._sent = False

    def flows(self):
        return (self.flow,)

    def on_tick(self, engine, tick):
        if self._sent:
            return
        self._sent = True
        for seq in range(self.count):
            engine.emit(
                Packet(
                    flow_id=self.flow.flow_id,
                    kind=self.kind,
                    seq=seq,
                    path_id=self.flow.path_id,
                    route=self.flow.route,
                    src_addr=self.flow.src_host,
                    dst_addr=self.flow.dst_host,
                    sent_tick=tick,
                )
            )

    def on_ack(self, engine, flow, pkt, tick):
        self.acks.append((pkt.seq, tick))

    def on_synack(self, engine, flow, pkt, tick):
        self.synacks.append((pkt.seq, tick))


def chain_engine(n_hops, capacity=None, buffer=None):
    """host -> r1 -> ... -> rN -> srv chain; bottleneck on the first link."""
    topo = Topology()
    nodes = ["host"] + [f"r{i}" for i in range(1, n_hops + 1)] + ["srv"]
    for a, b in zip(nodes, nodes[1:]):
        topo.add_duplex_link(a, b, capacity=None)
    if capacity is not None:
        topo.add_link("host", "r1", capacity=capacity, buffer=buffer)
    engine = Engine(topo, seed=1)
    flow = engine.open_flow("host", "srv", path_id=(1,))
    return engine, flow


class TestTiming:
    def test_one_hop_per_tick_round_trip(self):
        # 3 forward links + 3 reverse links -> ACK arrives at tick 6
        engine, flow = chain_engine(2)
        src = OneShotSource(flow)
        engine.add_source(src)
        engine.run(10)
        assert src.acks == [(0, 6)]

    def test_syn_gets_synack(self):
        engine, flow = chain_engine(2)
        src = OneShotSource(flow, kind=SYN)
        engine.add_source(src)
        engine.run(10)
        assert src.synacks == [(0, 6)]

    def test_longer_chain_longer_rtt(self):
        engine, flow = chain_engine(5)
        src = OneShotSource(flow)
        engine.add_source(src)
        engine.run(20)
        assert src.acks == [(0, 12)]


class TestCapacityAndBuffer:
    def test_capacity_paces_service(self):
        # 10 packets through a 2 pkt/tick link: last ACK is 5 ticks later
        engine, flow = chain_engine(2, capacity=2.0, buffer=100)
        src = OneShotSource(flow, count=10)
        engine.add_source(src)
        engine.run(20)
        assert len(src.acks) == 10
        first_ack = src.acks[0][1]
        last_ack = src.acks[-1][1]
        assert last_ack - first_ack == 4  # 5 service ticks, 2 per tick

    def test_buffer_overflow_drops(self):
        engine, flow = chain_engine(2, capacity=1.0, buffer=3)
        src = OneShotSource(flow, count=10)
        engine.add_source(src)
        engine.run(30)
        # arrivals are enqueued before service: the 3-packet buffer keeps
        # exactly 3 of the burst of 10
        assert len(src.acks) == 3
        assert engine.topology.link("host", "r1").dropped_total == 7
        # service is paced at 1 pkt/tick, so the three ACKs arrive in
        # consecutive ticks
        ack_ticks = [t for _, t in src.acks]
        assert ack_ticks == [ack_ticks[0], ack_ticks[0] + 1, ack_ticks[0] + 2]

    def test_fractional_capacity_accumulates(self):
        engine, flow = chain_engine(1, capacity=0.5, buffer=100)
        src = OneShotSource(flow, count=4)
        engine.add_source(src)
        engine.run(20)
        assert len(src.acks) == 4
        ticks = [t for _, t in src.acks]
        # service every 2 ticks at rate 0.5
        assert ticks == sorted(ticks)
        assert ticks[-1] - ticks[0] == 6

    def test_unbounded_link_never_drops(self):
        engine, flow = chain_engine(3)
        src = OneShotSource(flow, count=500)
        engine.add_source(src)
        engine.run(12)
        assert len(src.acks) == 500


class TestFlows:
    def test_open_flow_assigns_unique_ids(self, dumbbell):
        engine, _ = dumbbell
        f1 = engine.open_flow("h0", "srv", path_id=(1,))
        f2 = engine.open_flow("h1", "srv", path_id=(2,))
        assert f1.flow_id != f2.flow_id
        assert engine.flows[f1.flow_id] is f1

    def test_open_flow_computes_routes(self, dumbbell):
        engine, _ = dumbbell
        flow = engine.open_flow("h0", "srv", path_id=(1,))
        assert flow.route == ("h0", "r1", "r2", "srv")
        assert flow.reverse_route == ("srv", "r2", "r1", "h0")

    def test_explicit_route_validated(self, dumbbell):
        engine, _ = dumbbell
        from repro.errors import TopologyError

        with pytest.raises(TopologyError):
            engine.open_flow("h0", "srv", path_id=(1,), route=["h0", "srv"])

    def test_spawn_rng_deterministic_per_name(self, dumbbell):
        engine, _ = dumbbell
        a = engine.spawn_rng("x").random()
        b = Engine(engine.topology, seed=42).spawn_rng("x").random()
        c = engine.spawn_rng("y").random()
        assert a == b
        assert a != c


class TestMonitor:
    def test_monitor_counts_by_flow(self, dumbbell):
        engine, _ = dumbbell
        flow = engine.open_flow("h0", "srv", path_id=(1,))
        src = OneShotSource(flow, count=5)
        engine.add_source(src)
        monitor = engine.add_monitor("r1", "r2")
        engine.run(10)
        assert monitor.service_counts == {flow.flow_id: 5}
        assert monitor.total_serviced == 5

    def test_monitor_window_excludes_outside(self, dumbbell):
        engine, _ = dumbbell
        flow = engine.open_flow("h0", "srv", path_id=(1,))
        src = OneShotSource(flow, count=5)
        engine.add_source(src)
        monitor = engine.add_monitor("r1", "r2", LinkMonitor(start_tick=100))
        engine.run(10)
        assert monitor.total_serviced == 0

    def test_determinism_same_seed(self):
        def run(seed):
            engine, flow = chain_engine(2, capacity=1.0, buffer=2)
            src = OneShotSource(flow, count=10)
            engine.add_source(src)
            engine.run(30)
            return [t for _, t in src.acks]

        assert run(7) == run(7)
