"""Heterogeneous link delays (propagation > 1 tick per hop)."""

import pytest

from repro.errors import TopologyError
from repro.net.engine import Engine
from repro.net.topology import Topology
from repro.tcp.source import TcpSource
from tests.net.test_engine import OneShotSource


def delayed_chain(delay):
    topo = Topology()
    topo.add_duplex_link("h", "r0", capacity=None)
    topo.add_duplex_link("r0", "r1", capacity=None, delay=delay)
    topo.add_duplex_link("r1", "srv", capacity=None)
    engine = Engine(topo, seed=2)
    flow = engine.open_flow("h", "srv", path_id=(1,))
    return engine, flow


class TestDelay:
    def test_invalid_delay_rejected(self):
        with pytest.raises(TopologyError):
            Topology().add_link("a", "b", delay=0)

    def test_delay_extends_rtt(self):
        # base chain RTT: 3 + 3 = 6 ticks; delay 5 on the middle hop adds
        # 4 ticks each way
        engine, flow = delayed_chain(delay=5)
        src = OneShotSource(flow)
        engine.add_source(src)
        engine.run(25)
        assert src.acks == [(0, 14)]

    def test_delay_one_matches_fast_path(self):
        engine, flow = delayed_chain(delay=1)
        src = OneShotSource(flow)
        engine.add_source(src)
        engine.run(12)
        assert src.acks == [(0, 6)]

    def test_per_flow_order_preserved_across_delay(self):
        engine, flow = delayed_chain(delay=4)
        src = OneShotSource(flow, count=5)
        engine.add_source(src)
        engine.run(30)
        seqs = [seq for seq, _ in src.acks]
        assert seqs == [0, 1, 2, 3, 4]

    def test_tcp_measures_longer_rtt(self):
        engine, flow = delayed_chain(delay=6)
        src = TcpSource(flow)
        engine.add_source(src)
        engine.run(60)
        assert src.established
        assert src.srtt == pytest.approx(16.0, abs=1.0)


class TestScenarioDelays:
    def test_leaf_uplink_delays_change_path_rtt(self):
        from repro.traffic.scenarios import build_tree_scenario

        scenario = build_tree_scenario(
            scale_factor=0.05,
            attack_kind="none",
            seed=3,
            start_spread_seconds=0.5,
            leaf_uplink_delays={0: 8},
        )
        scenario.run_seconds(4.0)
        slow_pid = scenario.path_ids[0]
        slow = [
            s.srtt
            for s in scenario.legit_sources
            if s.flow.path_id == slow_pid and s.srtt
        ]
        fast = [
            s.srtt
            for s in scenario.legit_sources
            if s.flow.path_id != slow_pid and s.srtt
        ]
        assert slow and fast
        assert min(slow) > max(fast)
