"""Topology construction and routing."""

import pytest

from repro.errors import TopologyError
from repro.net.topology import Topology


@pytest.fixture
def diamond():
    """a -> {b, c} -> d diamond."""
    topo = Topology()
    topo.add_link("a", "b")
    topo.add_link("a", "c")
    topo.add_link("b", "d")
    topo.add_link("c", "d")
    return topo


class TestConstruction:
    def test_add_link_returns_link(self):
        topo = Topology()
        link = topo.add_link("x", "y", capacity=5.0, buffer=10)
        assert link.ends == ("x", "y")
        assert link.capacity == 5.0
        assert link.buffer == 10

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            Topology().add_link("x", "x")

    def test_duplex_reverse_defaults_unbounded(self):
        topo = Topology()
        fwd, rev = topo.add_duplex_link("a", "b", capacity=3.0, buffer=7)
        assert fwd.capacity == 3.0
        assert rev.capacity is None
        assert rev.buffer is None

    def test_replacing_link_keeps_adjacency_unique(self):
        topo = Topology()
        topo.add_link("a", "b", capacity=1.0)
        topo.add_link("a", "b", capacity=2.0)
        assert topo.link("a", "b").capacity == 2.0
        assert topo.successors("a") == ["b"]

    def test_predecessors(self, diamond):
        assert sorted(diamond.predecessors("d")) == ["b", "c"]

    def test_missing_link_raises(self):
        topo = Topology()
        topo.add_link("a", "b")
        with pytest.raises(TopologyError):
            topo.link("b", "a")

    def test_has_link(self, diamond):
        assert diamond.has_link("a", "b")
        assert not diamond.has_link("b", "a")


class TestRouting:
    def test_shortest_route_direct(self, diamond):
        route = diamond.shortest_route("a", "d")
        assert route[0] == "a" and route[-1] == "d" and len(route) == 3

    def test_shortest_route_trivial(self, diamond):
        assert diamond.shortest_route("a", "a") == ["a"]

    def test_no_route_raises(self, diamond):
        with pytest.raises(TopologyError):
            diamond.shortest_route("d", "a")  # directed: no way back

    def test_unknown_source_raises(self, diamond):
        with pytest.raises(TopologyError):
            diamond.shortest_route("zzz", "d")

    def test_validate_route_accepts_valid(self, diamond):
        diamond.validate_route(["a", "b", "d"])

    def test_validate_route_rejects_missing_hop(self, diamond):
        with pytest.raises(TopologyError):
            diamond.validate_route(["a", "d"])

    def test_validate_route_rejects_single_node(self, diamond):
        with pytest.raises(TopologyError):
            diamond.validate_route(["a"])

    def test_longer_chain(self):
        topo = Topology()
        for i in range(10):
            topo.add_link(i, i + 1)
        assert topo.shortest_route(0, 10) == list(range(11))
